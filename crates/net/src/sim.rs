//! Seeded discrete-event simulation of the worker–switch–master fabric.
//!
//! The real deployment runs over DPDK UDP through a Tofino; here a
//! priority queue of timed message deliveries stands in for the wires,
//! with independent per-hop Bernoulli loss. The simulation is fully
//! deterministic given the seed, which is what the protocol property
//! tests rely on: *under any loss pattern, every entry is either pruned
//! (and switch-ACKed) or delivered to the master*.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::master::MasterRx;
use crate::switchnode::SwitchNode;
use crate::wire::Message;
use crate::worker::WorkerTx;

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimulationConfig {
    /// Per-hop packet loss probability (applied independently on every
    /// worker→switch, switch→master, and ACK hop).
    pub loss_rate: f64,
    /// Per-hop packet duplication probability: the message is delivered
    /// twice, the copy one extra latency later. Exercises the dedup
    /// paths (switch pass-through for `Y ≤ X`, master bitmap).
    pub dup_rate: f64,
    /// Per-hop reordering probability: the message picks up extra jitter
    /// of 1..3× the hop latency, letting later packets overtake it.
    /// Exercises the switch's in-order gate (`Y > X + 1` gap-drop).
    pub reorder_rate: f64,
    /// One-way per-hop latency in microseconds.
    pub latency_us: u64,
    /// Worker retransmission timeout in microseconds.
    pub rto_us: u64,
    /// Worker in-flight window (packets).
    pub window: u32,
    /// RNG seed for loss decisions.
    pub seed: u64,
    /// Safety cap on processed events (guards against configuration
    /// errors; generous for the test sizes used).
    pub max_events: u64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            loss_rate: 0.0,
            dup_rate: 0.0,
            reorder_rate: 0.0,
            latency_us: 5, // <1µs switch + wire, rounded up
            rto_us: 500,
            window: 32,
            seed: 0,
            max_events: 50_000_000,
        }
    }
}

/// Aggregate statistics of one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Total worker data transmissions (including retransmissions).
    pub transmissions: u64,
    /// Retransmissions only.
    pub retransmissions: u64,
    /// Packets pruned (and ACKed) by the switch.
    pub pruned: u64,
    /// Packets forwarded by the switch after processing.
    pub forwarded: u64,
    /// Retransmissions forwarded without processing (`Y ≤ X`).
    pub passed_through: u64,
    /// Out-of-order packets dropped by the switch (`Y > X + 1`).
    pub gap_drops: u64,
    /// Duplicate data packets discarded at the master.
    pub duplicates: u64,
    /// Messages lost on the simulated wires.
    pub losses: u64,
    /// Duplicate copies injected on the simulated wires.
    pub dup_injected: u64,
    /// Messages delayed by reordering jitter on the simulated wires.
    pub reordered: u64,
    /// FIN messages dropped by a scripted [`FaultPlan`].
    pub fin_drops: u64,
    /// Switch reboots injected by a scripted [`FaultPlan`].
    pub switch_reboots: u64,
    /// Worker crashes injected by a scripted [`FaultPlan`].
    pub worker_crashes: u64,
    /// Entries delivered to the master (unique).
    pub delivered: u64,
    /// Virtual completion time (µs) — when the last worker finished.
    pub completion_us: u64,
    /// Whether all flows completed within the event budget.
    pub completed: bool,
}

/// Scripted faults injected into one [`Simulation::run_session`] call.
///
/// Worker indices refer to positions in the `workers` slice passed to
/// that session; times are virtual microseconds from session start. The
/// default plan injects nothing.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// `(worker index, time µs)`: fail-stop that worker at that time.
    /// Its flow never completes; recovery is the dispatcher's job
    /// (re-ship on a fresh flow id in a later session).
    pub worker_crashes: Vec<(usize, u64)>,
    /// Times (µs) at which the switch reboots with empty soft state —
    /// the §3 fault story (see `SwitchNode::reboot`).
    pub switch_reboots: Vec<u64>,
    /// Drop the first N FIN messages on the switch→master hop; the
    /// worker recovers by retransmitting the FIN after its RTO.
    pub drop_first_fins: u64,
    /// Abort the session as incomplete once virtual time passes this.
    pub deadline_us: Option<u64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Site {
    Switch,
    Master,
    Worker(usize),
    Wake(usize),
    CrashWorker(usize),
    RebootSwitch,
}

#[derive(Debug, PartialEq, Eq)]
struct Event {
    time: u64,
    tiebreak: u64,
    site: Site,
    msg: Option<Message>,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.tiebreak).cmp(&(other.time, other.tiebreak))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The simulated wires: event heap, deterministic tiebreaking, and the
/// seeded loss/duplication/reordering decisions.
struct Wires {
    cfg: SimulationConfig,
    heap: BinaryHeap<Reverse<Event>>,
    tiebreak: u64,
    rng: StdRng,
}

impl Wires {
    fn enqueue(&mut self, time: u64, site: Site, msg: Option<Message>) {
        self.tiebreak += 1;
        self.heap.push(Reverse(Event {
            time,
            tiebreak: self.tiebreak,
            site,
            msg,
        }));
    }

    /// Put `msg` on a wire toward `site`: Bernoulli loss, then optional
    /// reordering jitter, then an optional duplicate copy one hop later.
    /// The `> 0.0` guards keep the RNG draw sequence identical to a
    /// loss-only configuration when the extra knobs are off.
    fn transmit(&mut self, stats: &mut NetStats, now: u64, site: Site, msg: Message) {
        if self.rng.gen::<f64>() < self.cfg.loss_rate {
            stats.losses += 1;
            return;
        }
        let lat = self.cfg.latency_us;
        let mut delay = lat;
        if self.cfg.reorder_rate > 0.0 && self.rng.gen::<f64>() < self.cfg.reorder_rate {
            delay += 1 + self.rng.gen::<u64>() % (3 * lat.max(1));
            stats.reordered += 1;
        }
        if self.cfg.dup_rate > 0.0 && self.rng.gen::<f64>() < self.cfg.dup_rate {
            stats.dup_injected += 1;
            self.enqueue(now + delay + lat, site, Some(msg.clone()));
        }
        self.enqueue(now + delay, site, Some(msg));
    }
}

/// One run of the three-party protocol over lossy wires.
#[derive(Debug)]
pub struct Simulation {
    config: SimulationConfig,
}

impl Simulation {
    /// A simulation with the given parameters.
    pub fn new(config: SimulationConfig) -> Self {
        Simulation { config }
    }

    /// Drive `workers` through `switch` to a fresh master until every flow
    /// completes (or the event budget runs out). Returns the master (with
    /// the delivered entries) and the run statistics.
    pub fn run(&self, mut workers: Vec<WorkerTx>, mut switch: SwitchNode) -> (MasterRx, NetStats) {
        let mut master = MasterRx::new();
        let stats = self.run_session(
            &mut workers,
            &mut switch,
            &mut master,
            &FaultPlan::default(),
        );
        (master, stats)
    }

    /// Drive `workers` through a *persistent* `switch` and `master` until
    /// every live flow completes, the fault deadline passes, or the event
    /// budget runs out, injecting the scripted `faults` along the way.
    ///
    /// Unlike [`Simulation::run`], the switch and master keep their state
    /// across calls, so a dispatcher can retry failed flows on fresh flow
    /// ids in a later session against the same receive state. The
    /// returned [`NetStats`] are deltas for this session only; crashed
    /// workers leave the session incomplete (`completed == false`) while
    /// live flows still finish.
    pub fn run_session(
        &self,
        workers: &mut [WorkerTx],
        switch: &mut SwitchNode,
        master: &mut MasterRx,
        faults: &FaultPlan,
    ) -> NetStats {
        let mut stats = NetStats::default();
        // Snapshot persistent counters so the stats report deltas.
        let tx0: u64 = workers.iter().map(|w| w.transmissions).sum();
        let rtx0: u64 = workers.iter().map(|w| w.retransmissions).sum();
        let (pruned0, forwarded0, passed0, gaps0) = (
            switch.pruned,
            switch.forwarded,
            switch.passed_through,
            switch.gap_drops,
        );
        let dup0 = master.duplicates;
        let del0 = master.delivered().len() as u64;

        let mut wires = Wires {
            cfg: self.config,
            heap: BinaryHeap::new(),
            tiebreak: 0,
            rng: StdRng::seed_from_u64(self.config.seed),
        };
        let fid_to_idx: HashMap<u16, usize> = workers
            .iter()
            .enumerate()
            .map(|(i, w)| (w.fid(), i))
            .collect();
        assert_eq!(fid_to_idx.len(), workers.len(), "duplicate fids");

        for &(i, t) in &faults.worker_crashes {
            wires.enqueue(t, Site::CrashWorker(i), None);
        }
        for &t in &faults.switch_reboots {
            wires.enqueue(t, Site::RebootSwitch, None);
        }
        for i in 0..workers.len() {
            wires.enqueue(0, Site::Wake(i), None);
        }

        let mut fin_drops_left = faults.drop_first_fins;
        let mut events = 0u64;
        let mut now = 0u64;
        let mut completed = false;
        while let Some(Reverse(ev)) = wires.heap.pop() {
            events += 1;
            if events > self.config.max_events {
                break;
            }
            now = ev.time;
            if faults.deadline_us.is_some_and(|d| now > d) {
                break;
            }
            match ev.site {
                Site::Wake(i) => {
                    let msgs = workers[i].pump(now);
                    for m in msgs {
                        wires.transmit(&mut stats, now, Site::Switch, m);
                    }
                    if let Some(t) = workers[i].next_deadline() {
                        wires.enqueue(t.max(now + 1), Site::Wake(i), None);
                    }
                }
                Site::Switch => match ev.msg.expect("switch events carry messages") {
                    Message::Data(d) => {
                        let out = switch.on_data(d);
                        if let Some(m) = out.to_master {
                            wires.transmit(&mut stats, now, Site::Master, m);
                        }
                        if let Some(Message::Ack(a)) = out.to_worker {
                            let idx = fid_to_idx[&a.fid];
                            wires.transmit(&mut stats, now, Site::Worker(idx), Message::Ack(a));
                        }
                    }
                    Message::Fin { fid, seq } => {
                        let m = switch.on_fin(fid, seq);
                        if fin_drops_left > 0 {
                            fin_drops_left -= 1;
                            stats.fin_drops += 1;
                        } else {
                            wires.transmit(&mut stats, now, Site::Master, m);
                        }
                    }
                    other => unreachable!("unexpected at switch: {other:?}"),
                },
                Site::Master => {
                    let reply = match ev.msg.expect("master events carry messages") {
                        Message::Data(d) => master.on_data(d),
                        Message::Fin { fid, .. } => master.on_fin(fid),
                        other => unreachable!("unexpected at master: {other:?}"),
                    };
                    let fid = match &reply {
                        Message::Ack(a) => a.fid,
                        Message::FinAck { fid } => *fid,
                        _ => unreachable!(),
                    };
                    let idx = fid_to_idx[&fid];
                    wires.transmit(&mut stats, now, Site::Worker(idx), reply);
                }
                Site::Worker(i) => {
                    match ev.msg.expect("worker events carry messages") {
                        Message::Ack(a) => workers[i].on_ack(a.seq),
                        Message::FinAck { .. } => workers[i].on_fin_ack(),
                        other => unreachable!("unexpected at worker: {other:?}"),
                    }
                    // State change may free the window or finish the flow.
                    if let Some(t) = workers[i].next_deadline() {
                        wires.enqueue(t.max(now), Site::Wake(i), None);
                    }
                }
                Site::CrashWorker(i) => {
                    if let Some(w) = workers.get_mut(i) {
                        if !w.is_crashed() {
                            w.crash();
                            stats.worker_crashes += 1;
                        }
                    }
                }
                Site::RebootSwitch => {
                    switch.reboot();
                    stats.switch_reboots += 1;
                }
            }
            if workers.iter().all(|w| w.is_crashed() || w.is_done()) {
                completed = workers.iter().all(|w| w.is_done());
                break;
            }
        }
        if wires.heap.is_empty() {
            completed = workers.iter().all(|w| w.is_done());
        }
        stats.completed = completed;

        stats.transmissions = workers.iter().map(|w| w.transmissions).sum::<u64>() - tx0;
        stats.retransmissions = workers.iter().map(|w| w.retransmissions).sum::<u64>() - rtx0;
        stats.pruned = switch.pruned - pruned0;
        stats.forwarded = switch.forwarded - forwarded0;
        stats.passed_through = switch.passed_through - passed0;
        stats.gap_drops = switch.gap_drops - gaps0;
        stats.duplicates = master.duplicates - dup0;
        stats.delivered = master.delivered().len() as u64 - del0;
        stats.completion_us = now;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheetah_core::Decision;
    use std::collections::HashSet;

    fn keyed_entries(fid: u16, n: u64) -> Vec<Vec<u64>> {
        (0..n)
            .map(|i| vec![u64::from(fid) * 1_000_000 + i % 50])
            .collect()
    }

    fn drop_even_switch() -> SwitchNode {
        SwitchNode::new(Box::new(|_, v| {
            if v[0] % 2 == 0 {
                Decision::Prune
            } else {
                Decision::Forward
            }
        }))
    }

    #[test]
    fn lossless_run_delivers_exactly_forwarded() {
        let cfg = SimulationConfig::default();
        let workers = vec![WorkerTx::new(1, keyed_entries(1, 500), 32, 500)];
        let (master, stats) = Simulation::new(cfg).run(workers, drop_even_switch());
        assert!(stats.completed);
        assert_eq!(stats.retransmissions, 0);
        assert_eq!(stats.pruned + stats.forwarded, 500);
        assert_eq!(stats.delivered, stats.forwarded);
        // All delivered values are odd (the forwarded ones).
        assert!(master.delivered().iter().all(|(_, _, v)| v[0] % 2 == 1));
    }

    #[test]
    fn lossy_run_completes_and_accounts_for_everything() {
        let cfg = SimulationConfig {
            loss_rate: 0.1,
            seed: 42,
            ..SimulationConfig::default()
        };
        let n = 300u64;
        let workers = vec![
            WorkerTx::new(1, keyed_entries(1, n), 16, 200),
            WorkerTx::new(2, keyed_entries(2, n), 16, 200),
        ];
        let (master, stats) = Simulation::new(cfg).run(workers, drop_even_switch());
        assert!(stats.completed, "protocol must finish under loss");
        assert!(stats.retransmissions > 0, "loss must cause retransmissions");
        assert!(stats.losses > 0);
        // Everything either pruned at the switch or delivered: for each
        // flow, each seq must be accounted. Delivered ∪ pruned ⊇ all seqs —
        // delivered seqs are recorded; pruning is per in-order processing,
        // so check the union covers all entries via the odd/even split:
        // every odd entry must be delivered.
        let delivered: HashSet<(u16, u32)> = master
            .delivered()
            .iter()
            .map(|(f, s, _)| (*f, *s))
            .collect();
        for fid in [1u16, 2] {
            for seq in 0..n as u32 {
                let key = u64::from(fid) * 1_000_000 + u64::from(seq) % 50;
                if key % 2 == 1 {
                    assert!(
                        delivered.contains(&(fid, seq)),
                        "odd entry fid={fid} seq={seq} lost"
                    );
                }
            }
        }
    }

    #[test]
    fn pruned_then_retransmitted_is_harmless_superset() {
        // With heavy ACK loss, some pruned packets get retransmitted and
        // reach the master (passed_through). The delivered set may then be
        // a superset of the forwarded set — never a subset of needed data.
        let cfg = SimulationConfig {
            loss_rate: 0.25,
            seed: 7,
            rto_us: 100,
            ..SimulationConfig::default()
        };
        let workers = vec![WorkerTx::new(1, keyed_entries(1, 200), 8, 100)];
        let (master, stats) = Simulation::new(cfg).run(workers, drop_even_switch());
        assert!(stats.completed);
        // Some even (pruned) entries may appear; all odd ones must.
        let odd_delivered = master
            .delivered()
            .iter()
            .filter(|(_, _, v)| v[0] % 2 == 1)
            .count();
        let odd_total = keyed_entries(1, 200)
            .iter()
            .filter(|v| v[0] % 2 == 1)
            .count();
        assert_eq!(odd_delivered, odd_total);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SimulationConfig {
            loss_rate: 0.15,
            seed: 99,
            ..SimulationConfig::default()
        };
        let run = || {
            let workers = vec![WorkerTx::new(1, keyed_entries(1, 100), 8, 200)];
            Simulation::new(cfg).run(workers, drop_even_switch()).1
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn switch_state_never_sees_entry_twice() {
        // Count pruner invocations: must equal the number of entries even
        // under loss (in-order processing + pass-through for Y ≤ X).
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let count = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&count);
        let switch = SwitchNode::new(Box::new(move |_, _| {
            c2.fetch_add(1, Ordering::Relaxed);
            Decision::Forward
        }));
        let cfg = SimulationConfig {
            loss_rate: 0.2,
            seed: 5,
            rto_us: 100,
            ..SimulationConfig::default()
        };
        let workers = vec![WorkerTx::new(1, keyed_entries(1, 150), 8, 100)];
        let (_, stats) = Simulation::new(cfg).run(workers, switch);
        assert!(stats.completed);
        assert_eq!(
            count.load(Ordering::Relaxed),
            150,
            "each entry processed exactly once despite retransmissions"
        );
    }

    #[test]
    fn duplication_and_reordering_keep_exactly_once_processing() {
        // Under duplication + reordering + loss, the switch must still
        // process each entry exactly once (dups pass through `Y ≤ X`,
        // reordered overtakers gap-drop `Y > X + 1`) and the master's
        // result must stay exact: every forwarded (odd) entry delivered.
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let count = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&count);
        let switch = SwitchNode::new(Box::new(move |_, v| {
            c2.fetch_add(1, Ordering::Relaxed);
            if v[0] % 2 == 0 {
                Decision::Prune
            } else {
                Decision::Forward
            }
        }));
        let cfg = SimulationConfig {
            loss_rate: 0.1,
            dup_rate: 0.25,
            reorder_rate: 0.25,
            seed: 11,
            rto_us: 200,
            ..SimulationConfig::default()
        };
        let n = 200u64;
        let workers = vec![WorkerTx::new(1, keyed_entries(1, n), 8, 200)];
        let (master, stats) = Simulation::new(cfg).run(workers, switch);
        assert!(stats.completed);
        assert!(stats.dup_injected > 0, "dup knob must fire");
        assert!(stats.reordered > 0, "reorder knob must fire");
        assert_eq!(
            count.load(Ordering::Relaxed),
            n,
            "each entry processed exactly once despite dup/reorder"
        );
        let delivered: HashSet<(u16, u32)> = master
            .delivered()
            .iter()
            .map(|(f, s, _)| (*f, *s))
            .collect();
        for seq in 0..n as u32 {
            if (1_000_000 + u64::from(seq) % 50) % 2 == 1 {
                assert!(delivered.contains(&(1, seq)), "odd entry seq={seq} lost");
            }
        }
    }

    #[test]
    fn worker_crash_halts_its_flow_but_not_the_session() {
        let sim = Simulation::new(SimulationConfig::default());
        let mut workers = vec![
            WorkerTx::new(1, keyed_entries(1, 300), 8, 500),
            WorkerTx::new(2, keyed_entries(2, 300), 8, 500),
        ];
        let mut switch = SwitchNode::transparent();
        let mut master = MasterRx::new();
        let faults = FaultPlan {
            worker_crashes: vec![(0, 40)],
            ..FaultPlan::default()
        };
        let stats = sim.run_session(&mut workers, &mut switch, &mut master, &faults);
        assert!(!stats.completed, "a crashed flow never completes");
        assert_eq!(stats.worker_crashes, 1);
        assert!(workers[0].is_crashed() && !workers[0].is_done());
        assert!(workers[1].is_done(), "the live flow still finishes");
        // Recovery: re-ship the dead worker's stream on a fresh flow id
        // against the same persistent switch and master.
        let mut retry = vec![WorkerTx::new(3, keyed_entries(1, 300), 8, 500)];
        let stats2 = sim.run_session(&mut retry, &mut switch, &mut master, &FaultPlan::default());
        assert!(stats2.completed);
        assert_eq!(stats2.delivered, 300, "delta stats cover only the retry");
        assert!(master.is_finished(2) && master.is_finished(3));
    }

    #[test]
    fn switch_reboot_mid_run_still_completes_exactly() {
        let cfg = SimulationConfig {
            loss_rate: 0.05,
            seed: 21,
            rto_us: 200,
            ..SimulationConfig::default()
        };
        let sim = Simulation::new(cfg);
        let mut workers = vec![WorkerTx::new(1, keyed_entries(1, 300), 8, 200)];
        let mut switch = SwitchNode::transparent();
        let mut master = MasterRx::new();
        let faults = FaultPlan {
            switch_reboots: vec![200],
            ..FaultPlan::default()
        };
        let stats = sim.run_session(&mut workers, &mut switch, &mut master, &faults);
        assert!(stats.completed, "flows survive a mid-run reboot");
        assert_eq!(stats.switch_reboots, 1);
        assert_eq!(switch.reboots, 1);
        let unique: HashSet<u32> = master.delivered().iter().map(|(_, s, _)| *s).collect();
        assert_eq!(unique.len(), 300, "every entry delivered despite reboot");
    }

    #[test]
    fn fin_loss_recovers_via_retransmission() {
        let sim = Simulation::new(SimulationConfig::default());
        let mut workers = vec![WorkerTx::new(1, keyed_entries(1, 50), 8, 500)];
        let mut switch = SwitchNode::transparent();
        let mut master = MasterRx::new();
        let faults = FaultPlan {
            drop_first_fins: 2,
            ..FaultPlan::default()
        };
        let stats = sim.run_session(&mut workers, &mut switch, &mut master, &faults);
        assert!(stats.completed);
        assert_eq!(stats.fin_drops, 2);
        assert!(master.is_finished(1));
    }

    #[test]
    fn deadline_bounds_a_doomed_session() {
        let cfg = SimulationConfig {
            loss_rate: 1.0,
            ..SimulationConfig::default()
        };
        let sim = Simulation::new(cfg);
        let mut workers = vec![WorkerTx::new(1, keyed_entries(1, 20), 4, 100)];
        let faults = FaultPlan {
            deadline_us: Some(2_000),
            ..FaultPlan::default()
        };
        let stats = sim.run_session(
            &mut workers,
            &mut SwitchNode::transparent(),
            &mut MasterRx::new(),
            &faults,
        );
        assert!(!stats.completed, "total loss cannot complete");
        assert!(stats.losses > 0);
    }

    #[test]
    fn completion_time_grows_with_loss() {
        let run = |loss| {
            let cfg = SimulationConfig {
                loss_rate: loss,
                seed: 3,
                ..SimulationConfig::default()
            };
            let workers = vec![WorkerTx::new(1, keyed_entries(1, 400), 16, 200)];
            Simulation::new(cfg)
                .run(workers, SwitchNode::transparent())
                .1
        };
        let clean = run(0.0);
        let lossy = run(0.2);
        assert!(clean.completed && lossy.completed);
        assert!(
            lossy.completion_us > clean.completion_us,
            "loss should delay completion ({} vs {})",
            lossy.completion_us,
            clean.completion_us
        );
    }
}
