//! Seeded discrete-event simulation of the worker–switch–master fabric.
//!
//! The real deployment runs over DPDK UDP through a Tofino; here a
//! priority queue of timed message deliveries stands in for the wires,
//! with independent per-hop Bernoulli loss. The simulation is fully
//! deterministic given the seed, which is what the protocol property
//! tests rely on: *under any loss pattern, every entry is either pruned
//! (and switch-ACKed) or delivered to the master*.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::master::MasterRx;
use crate::switchnode::SwitchNode;
use crate::wire::Message;
use crate::worker::WorkerTx;

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimulationConfig {
    /// Per-hop packet loss probability (applied independently on every
    /// worker→switch, switch→master, and ACK hop).
    pub loss_rate: f64,
    /// One-way per-hop latency in microseconds.
    pub latency_us: u64,
    /// Worker retransmission timeout in microseconds.
    pub rto_us: u64,
    /// Worker in-flight window (packets).
    pub window: u32,
    /// RNG seed for loss decisions.
    pub seed: u64,
    /// Safety cap on processed events (guards against configuration
    /// errors; generous for the test sizes used).
    pub max_events: u64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            loss_rate: 0.0,
            latency_us: 5, // <1µs switch + wire, rounded up
            rto_us: 500,
            window: 32,
            seed: 0,
            max_events: 50_000_000,
        }
    }
}

/// Aggregate statistics of one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Total worker data transmissions (including retransmissions).
    pub transmissions: u64,
    /// Retransmissions only.
    pub retransmissions: u64,
    /// Packets pruned (and ACKed) by the switch.
    pub pruned: u64,
    /// Packets forwarded by the switch after processing.
    pub forwarded: u64,
    /// Retransmissions forwarded without processing (`Y ≤ X`).
    pub passed_through: u64,
    /// Out-of-order packets dropped by the switch (`Y > X + 1`).
    pub gap_drops: u64,
    /// Duplicate data packets discarded at the master.
    pub duplicates: u64,
    /// Messages lost on the simulated wires.
    pub losses: u64,
    /// Entries delivered to the master (unique).
    pub delivered: u64,
    /// Virtual completion time (µs) — when the last worker finished.
    pub completion_us: u64,
    /// Whether all flows completed within the event budget.
    pub completed: bool,
}

#[derive(Debug, PartialEq, Eq)]
enum Site {
    Switch,
    Master,
    Worker(usize),
    Wake(usize),
}

#[derive(Debug, PartialEq, Eq)]
struct Event {
    time: u64,
    tiebreak: u64,
    site: Site,
    msg: Option<Message>,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.tiebreak).cmp(&(other.time, other.tiebreak))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One run of the three-party protocol over lossy wires.
#[derive(Debug)]
pub struct Simulation {
    config: SimulationConfig,
}

impl Simulation {
    /// A simulation with the given parameters.
    pub fn new(config: SimulationConfig) -> Self {
        Simulation { config }
    }

    /// Drive `workers` through `switch` to a fresh master until every flow
    /// completes (or the event budget runs out). Returns the master (with
    /// the delivered entries) and the run statistics.
    pub fn run(&self, mut workers: Vec<WorkerTx>, mut switch: SwitchNode) -> (MasterRx, NetStats) {
        let mut master = MasterRx::new();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        let mut tiebreak = 0u64;
        let mut stats = NetStats::default();
        let fid_to_idx: HashMap<u16, usize> = workers
            .iter()
            .enumerate()
            .map(|(i, w)| (w.fid(), i))
            .collect();
        assert_eq!(fid_to_idx.len(), workers.len(), "duplicate fids");

        let mut push = |heap: &mut BinaryHeap<Reverse<Event>>, time, site, msg| {
            tiebreak += 1;
            heap.push(Reverse(Event {
                time,
                tiebreak,
                site,
                msg,
            }));
        };
        for i in 0..workers.len() {
            push(&mut heap, 0, Site::Wake(i), None);
        }

        let lat = self.config.latency_us;
        let mut events = 0u64;
        let mut now = 0u64;
        while let Some(Reverse(ev)) = heap.pop() {
            events += 1;
            if events > self.config.max_events {
                stats.completed = false;
                break;
            }
            now = ev.time;
            match ev.site {
                Site::Wake(i) => {
                    let msgs = workers[i].pump(now);
                    for m in msgs {
                        if rng.gen::<f64>() < self.config.loss_rate {
                            stats.losses += 1;
                        } else {
                            push(&mut heap, now + lat, Site::Switch, Some(m));
                        }
                    }
                    if let Some(t) = workers[i].next_deadline() {
                        push(&mut heap, t.max(now + 1), Site::Wake(i), None);
                    }
                }
                Site::Switch => match ev.msg.expect("switch events carry messages") {
                    Message::Data(d) => {
                        let out = switch.on_data(d);
                        if let Some(m) = out.to_master {
                            if rng.gen::<f64>() < self.config.loss_rate {
                                stats.losses += 1;
                            } else {
                                push(&mut heap, now + lat, Site::Master, Some(m));
                            }
                        }
                        if let Some(Message::Ack(a)) = out.to_worker {
                            if rng.gen::<f64>() < self.config.loss_rate {
                                stats.losses += 1;
                            } else {
                                let idx = fid_to_idx[&a.fid];
                                push(
                                    &mut heap,
                                    now + lat,
                                    Site::Worker(idx),
                                    Some(Message::Ack(a)),
                                );
                            }
                        }
                    }
                    Message::Fin { fid, seq } => {
                        let m = switch.on_fin(fid, seq);
                        if rng.gen::<f64>() < self.config.loss_rate {
                            stats.losses += 1;
                        } else {
                            push(&mut heap, now + lat, Site::Master, Some(m));
                        }
                    }
                    other => unreachable!("unexpected at switch: {other:?}"),
                },
                Site::Master => {
                    let reply = match ev.msg.expect("master events carry messages") {
                        Message::Data(d) => master.on_data(d),
                        Message::Fin { fid, .. } => master.on_fin(fid),
                        other => unreachable!("unexpected at master: {other:?}"),
                    };
                    let fid = match &reply {
                        Message::Ack(a) => a.fid,
                        Message::FinAck { fid } => *fid,
                        _ => unreachable!(),
                    };
                    if rng.gen::<f64>() < self.config.loss_rate {
                        stats.losses += 1;
                    } else {
                        let idx = fid_to_idx[&fid];
                        push(&mut heap, now + lat, Site::Worker(idx), Some(reply));
                    }
                }
                Site::Worker(i) => {
                    match ev.msg.expect("worker events carry messages") {
                        Message::Ack(a) => workers[i].on_ack(a.seq),
                        Message::FinAck { .. } => workers[i].on_fin_ack(),
                        other => unreachable!("unexpected at worker: {other:?}"),
                    }
                    // State change may free the window or finish the flow.
                    if let Some(t) = workers[i].next_deadline() {
                        push(&mut heap, t.max(now), Site::Wake(i), None);
                    }
                }
            }
            if workers.iter().all(|w| w.is_done()) {
                stats.completed = true;
                break;
            }
        }
        if heap.is_empty() {
            stats.completed = workers.iter().all(|w| w.is_done());
        }

        stats.transmissions = workers.iter().map(|w| w.transmissions).sum();
        stats.retransmissions = workers.iter().map(|w| w.retransmissions).sum();
        stats.pruned = switch.pruned;
        stats.forwarded = switch.forwarded;
        stats.passed_through = switch.passed_through;
        stats.gap_drops = switch.gap_drops;
        stats.duplicates = master.duplicates;
        stats.delivered = master.delivered().len() as u64;
        stats.completion_us = now;
        (master, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheetah_core::Decision;
    use std::collections::HashSet;

    fn keyed_entries(fid: u16, n: u64) -> Vec<Vec<u64>> {
        (0..n)
            .map(|i| vec![u64::from(fid) * 1_000_000 + i % 50])
            .collect()
    }

    fn drop_even_switch() -> SwitchNode {
        SwitchNode::new(Box::new(|_, v| {
            if v[0] % 2 == 0 {
                Decision::Prune
            } else {
                Decision::Forward
            }
        }))
    }

    #[test]
    fn lossless_run_delivers_exactly_forwarded() {
        let cfg = SimulationConfig::default();
        let workers = vec![WorkerTx::new(1, keyed_entries(1, 500), 32, 500)];
        let (master, stats) = Simulation::new(cfg).run(workers, drop_even_switch());
        assert!(stats.completed);
        assert_eq!(stats.retransmissions, 0);
        assert_eq!(stats.pruned + stats.forwarded, 500);
        assert_eq!(stats.delivered, stats.forwarded);
        // All delivered values are odd (the forwarded ones).
        assert!(master.delivered().iter().all(|(_, _, v)| v[0] % 2 == 1));
    }

    #[test]
    fn lossy_run_completes_and_accounts_for_everything() {
        let cfg = SimulationConfig {
            loss_rate: 0.1,
            seed: 42,
            ..SimulationConfig::default()
        };
        let n = 300u64;
        let workers = vec![
            WorkerTx::new(1, keyed_entries(1, n), 16, 200),
            WorkerTx::new(2, keyed_entries(2, n), 16, 200),
        ];
        let (master, stats) = Simulation::new(cfg).run(workers, drop_even_switch());
        assert!(stats.completed, "protocol must finish under loss");
        assert!(stats.retransmissions > 0, "loss must cause retransmissions");
        assert!(stats.losses > 0);
        // Everything either pruned at the switch or delivered: for each
        // flow, each seq must be accounted. Delivered ∪ pruned ⊇ all seqs —
        // delivered seqs are recorded; pruning is per in-order processing,
        // so check the union covers all entries via the odd/even split:
        // every odd entry must be delivered.
        let delivered: HashSet<(u16, u32)> = master
            .delivered()
            .iter()
            .map(|(f, s, _)| (*f, *s))
            .collect();
        for fid in [1u16, 2] {
            for seq in 0..n as u32 {
                let key = u64::from(fid) * 1_000_000 + u64::from(seq) % 50;
                if key % 2 == 1 {
                    assert!(
                        delivered.contains(&(fid, seq)),
                        "odd entry fid={fid} seq={seq} lost"
                    );
                }
            }
        }
    }

    #[test]
    fn pruned_then_retransmitted_is_harmless_superset() {
        // With heavy ACK loss, some pruned packets get retransmitted and
        // reach the master (passed_through). The delivered set may then be
        // a superset of the forwarded set — never a subset of needed data.
        let cfg = SimulationConfig {
            loss_rate: 0.25,
            seed: 7,
            rto_us: 100,
            ..SimulationConfig::default()
        };
        let workers = vec![WorkerTx::new(1, keyed_entries(1, 200), 8, 100)];
        let (master, stats) = Simulation::new(cfg).run(workers, drop_even_switch());
        assert!(stats.completed);
        // Some even (pruned) entries may appear; all odd ones must.
        let odd_delivered = master
            .delivered()
            .iter()
            .filter(|(_, _, v)| v[0] % 2 == 1)
            .count();
        let odd_total = keyed_entries(1, 200)
            .iter()
            .filter(|v| v[0] % 2 == 1)
            .count();
        assert_eq!(odd_delivered, odd_total);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SimulationConfig {
            loss_rate: 0.15,
            seed: 99,
            ..SimulationConfig::default()
        };
        let run = || {
            let workers = vec![WorkerTx::new(1, keyed_entries(1, 100), 8, 200)];
            Simulation::new(cfg).run(workers, drop_even_switch()).1
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn switch_state_never_sees_entry_twice() {
        // Count pruner invocations: must equal the number of entries even
        // under loss (in-order processing + pass-through for Y ≤ X).
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let count = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&count);
        let switch = SwitchNode::new(Box::new(move |_, _| {
            c2.fetch_add(1, Ordering::Relaxed);
            Decision::Forward
        }));
        let cfg = SimulationConfig {
            loss_rate: 0.2,
            seed: 5,
            rto_us: 100,
            ..SimulationConfig::default()
        };
        let workers = vec![WorkerTx::new(1, keyed_entries(1, 150), 8, 100)];
        let (_, stats) = Simulation::new(cfg).run(workers, switch);
        assert!(stats.completed);
        assert_eq!(
            count.load(Ordering::Relaxed),
            150,
            "each entry processed exactly once despite retransmissions"
        );
    }

    #[test]
    fn completion_time_grows_with_loss() {
        let run = |loss| {
            let cfg = SimulationConfig {
                loss_rate: loss,
                seed: 3,
                ..SimulationConfig::default()
            };
            let workers = vec![WorkerTx::new(1, keyed_entries(1, 400), 16, 200)];
            Simulation::new(cfg)
                .run(workers, SwitchNode::transparent())
                .1
        };
        let clean = run(0.0);
        let lossy = run(0.2);
        assert!(clean.completed && lossy.completed);
        assert!(
            lossy.completion_us > clean.completion_us,
            "loss should delay completion ({} vs {})",
            lossy.completion_us,
            clean.completion_us
        );
    }
}
