//! Packet and ACK wire format (Figure 4).
//!
//! Data packets carry a flow id (`fid`, identifying the worker/query
//! stream), an 8-bit value count `n`, the entry identifier doubling as the
//! sequence number, and `n` 64-bit values (key fingerprints / numeric
//! columns). ACKs echo the flow id and sequence number plus a bit saying
//! whether the switch (prune) or the master (delivery) generated them.
//! FIN/FIN-ACK close a flow once every entry is accounted for.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A data packet: one entry's switch-visible values (§7.2 stores one entry
/// per packet; §9 discusses batching).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataPacket {
    /// Flow id (worker/query stream).
    pub fid: u16,
    /// Entry id, also the sequence number.
    pub seq: u32,
    /// The values (at most 255, per the 8-bit `n` field).
    pub values: Vec<u64>,
}

/// An acknowledgement for one data packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckPacket {
    /// Flow id being acknowledged.
    pub fid: u16,
    /// Sequence number being acknowledged.
    pub seq: u32,
    /// True when the switch pruned the packet (vs. master delivery).
    pub pruned: bool,
}

/// All messages on the Cheetah channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Entry data, worker → switch → master.
    Data(DataPacket),
    /// Acknowledgement, switch/master → worker.
    Ack(AckPacket),
    /// End of a flow's data (seq = last data seq + 1).
    Fin {
        /// Flow being closed.
        fid: u16,
        /// Sequence number of the FIN itself.
        seq: u32,
    },
    /// Master's acknowledgement of a FIN.
    FinAck {
        /// Flow whose FIN is acknowledged.
        fid: u16,
    },
}

/// Maximum values one data packet can carry (the 8-bit `n` field).
pub const MAX_VALUES: usize = u8::MAX as usize;

/// Split a flat word payload into data-packet-sized entries
/// (≤ [`MAX_VALUES`] words each) for streaming over one flow: entry `i`
/// becomes the packet with sequence number `i`, so the receiver rebuilds
/// the payload by concatenating delivered entries in sequence order. An
/// empty payload yields no entries (a FIN-only flow).
pub fn chunk_payload(words: &[u64]) -> Vec<Vec<u64>> {
    words.chunks(MAX_VALUES).map(<[u64]>::to_vec).collect()
}

const TAG_DATA: u8 = 1;
const TAG_ACK: u8 = 2;
const TAG_FIN: u8 = 3;
const TAG_FINACK: u8 = 4;

/// Wire-format decoding error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Buffer ended before the advertised fields.
    Truncated,
    /// Unknown message tag byte.
    BadTag(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated packet"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t}"),
        }
    }
}

impl std::error::Error for WireError {}

impl Message {
    /// Serialize to the UDP payload format of Figure 4.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(16);
        match self {
            Message::Data(d) => {
                assert!(d.values.len() <= MAX_VALUES, "n is an 8-bit field");
                b.put_u8(TAG_DATA);
                b.put_u16(d.fid);
                b.put_u8(d.values.len() as u8);
                b.put_u32(d.seq);
                for &v in &d.values {
                    b.put_u64(v);
                }
            }
            Message::Ack(a) => {
                b.put_u8(TAG_ACK);
                b.put_u16(a.fid);
                b.put_u8(u8::from(a.pruned));
                b.put_u32(a.seq);
            }
            Message::Fin { fid, seq } => {
                b.put_u8(TAG_FIN);
                b.put_u16(*fid);
                b.put_u32(*seq);
            }
            Message::FinAck { fid } => {
                b.put_u8(TAG_FINACK);
                b.put_u16(*fid);
            }
        }
        b.freeze()
    }

    /// Parse a UDP payload.
    pub fn decode(mut buf: Bytes) -> Result<Message, WireError> {
        if buf.remaining() < 1 {
            return Err(WireError::Truncated);
        }
        let tag = buf.get_u8();
        match tag {
            TAG_DATA => {
                if buf.remaining() < 7 {
                    return Err(WireError::Truncated);
                }
                let fid = buf.get_u16();
                let n = buf.get_u8() as usize;
                let seq = buf.get_u32();
                if buf.remaining() < n * 8 {
                    return Err(WireError::Truncated);
                }
                let values = (0..n).map(|_| buf.get_u64()).collect();
                Ok(Message::Data(DataPacket { fid, seq, values }))
            }
            TAG_ACK => {
                if buf.remaining() < 7 {
                    return Err(WireError::Truncated);
                }
                let fid = buf.get_u16();
                let pruned = buf.get_u8() != 0;
                let seq = buf.get_u32();
                Ok(Message::Ack(AckPacket { fid, seq, pruned }))
            }
            TAG_FIN => {
                if buf.remaining() < 6 {
                    return Err(WireError::Truncated);
                }
                let fid = buf.get_u16();
                let seq = buf.get_u32();
                Ok(Message::Fin { fid, seq })
            }
            TAG_FINACK => {
                if buf.remaining() < 2 {
                    return Err(WireError::Truncated);
                }
                Ok(Message::FinAck { fid: buf.get_u16() })
            }
            t => Err(WireError::BadTag(t)),
        }
    }

    /// Serialized size in bytes (for network-volume accounting).
    pub fn wire_len(&self) -> usize {
        match self {
            Message::Data(d) => 8 + 8 * d.values.len(),
            Message::Ack(_) => 8,
            Message::Fin { .. } => 7,
            Message::FinAck { .. } => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: Message) {
        let enc = m.encode();
        assert_eq!(enc.len(), m.wire_len());
        assert_eq!(Message::decode(enc).unwrap(), m);
    }

    #[test]
    fn data_roundtrip() {
        roundtrip(Message::Data(DataPacket {
            fid: 7,
            seq: 123_456,
            values: vec![u64::MAX, 0, 42],
        }));
        roundtrip(Message::Data(DataPacket {
            fid: 0,
            seq: 0,
            values: vec![],
        }));
    }

    #[test]
    fn ack_roundtrip() {
        roundtrip(Message::Ack(AckPacket {
            fid: 1,
            seq: 99,
            pruned: true,
        }));
        roundtrip(Message::Ack(AckPacket {
            fid: 1,
            seq: 99,
            pruned: false,
        }));
    }

    #[test]
    fn fin_roundtrip() {
        roundtrip(Message::Fin { fid: 3, seq: 1000 });
        roundtrip(Message::FinAck { fid: 3 });
    }

    #[test]
    fn truncated_rejected() {
        let m = Message::Data(DataPacket {
            fid: 7,
            seq: 1,
            values: vec![1, 2],
        });
        let enc = m.encode();
        for cut in 0..enc.len() {
            let r = Message::decode(enc.slice(0..cut));
            assert!(r.is_err() || cut == enc.len(), "cut {cut} decoded");
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let buf = Bytes::from_static(&[99, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(Message::decode(buf), Err(WireError::BadTag(99)));
    }

    #[test]
    #[should_panic(expected = "8-bit")]
    fn oversized_value_count_panics() {
        Message::Data(DataPacket {
            fid: 0,
            seq: 0,
            values: vec![0; 256],
        })
        .encode();
    }
}
