//! The CWorker transmit state machine.
//!
//! Entry ids double as sequence numbers (§7.2). The worker keeps a timer
//! per unacknowledged packet and retransmits on expiry; a sliding window
//! bounds the number of packets in flight. Because the switch drops
//! out-of-order packets (`Y > X + 1`), sending far ahead of the first
//! unacked packet wastes bandwidth — the window models the DPDK pacing of
//! the real CWorker.

use crate::wire::{DataPacket, Message};

/// Transmit-side state for one flow (one worker's stream).
#[derive(Debug)]
pub struct WorkerTx {
    fid: u16,
    entries: Vec<Vec<u64>>,
    acked: Vec<bool>,
    /// First not-yet-acked sequence number (window base).
    base: u32,
    /// Next sequence number never sent.
    next_new: u32,
    /// Per-seq retransmission deadline (µs), for in-flight packets.
    deadlines: Vec<u64>,
    window: u32,
    rto_us: u64,
    fin_acked: bool,
    /// Next time the FIN may be (re)sent.
    fin_deadline: u64,
    /// Fail-stop flag: a crashed worker transmits nothing and ignores
    /// every reply, but its flow is *not* done — recovery is the
    /// dispatcher's job (re-ship on a fresh flow id).
    crashed: bool,
    /// Statistics: total data transmissions (including retransmissions).
    pub transmissions: u64,
    /// Statistics: retransmissions only.
    pub retransmissions: u64,
}

impl WorkerTx {
    /// A worker streaming `entries` on flow `fid`.
    ///
    /// `window` is the in-flight packet cap; `rto_us` the retransmission
    /// timeout in microseconds.
    pub fn new(fid: u16, entries: Vec<Vec<u64>>, window: u32, rto_us: u64) -> Self {
        assert!(window >= 1);
        assert!(entries.len() < u32::MAX as usize - 1, "seq space");
        let n = entries.len();
        WorkerTx {
            fid,
            entries,
            acked: vec![false; n],
            base: 0,
            next_new: 0,
            deadlines: vec![u64::MAX; n],
            window,
            rto_us,
            fin_acked: false,
            fin_deadline: 0,
            crashed: false,
            transmissions: 0,
            retransmissions: 0,
        }
    }

    /// Fail-stop this worker: from now on it transmits nothing and
    /// ignores every incoming ACK/FIN-ACK. The flow stays incomplete
    /// ([`WorkerTx::is_done`] remains `false`), which is how the
    /// dispatcher detects the crash and re-ships the stream on a live
    /// worker with a fresh flow id.
    pub fn crash(&mut self) {
        self.crashed = true;
    }

    /// Whether [`WorkerTx::crash`] was invoked.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// The flow id.
    pub fn fid(&self) -> u16 {
        self.fid
    }

    /// Total entries in the stream.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All data acked and the FIN acknowledged.
    pub fn is_done(&self) -> bool {
        self.all_data_acked() && self.fin_acked
    }

    fn all_data_acked(&self) -> bool {
        self.base as usize >= self.entries.len()
    }

    /// The FIN sequence number (one past the last entry).
    fn fin_seq(&self) -> u32 {
        self.entries.len() as u32
    }

    /// Messages to transmit at time `now`: fresh packets within the
    /// window, expired retransmissions, and the FIN once data completes.
    pub fn pump(&mut self, now_us: u64) -> Vec<Message> {
        let mut out = Vec::new();
        if self.crashed {
            return out;
        }
        if self.all_data_acked() {
            if !self.fin_acked && now_us >= self.fin_deadline {
                out.push(Message::Fin {
                    fid: self.fid,
                    seq: self.fin_seq(),
                });
                self.fin_deadline = now_us + self.rto_us;
            }
            return out;
        }
        // Retransmit expired in-flight packets.
        let window_end = (self.base + self.window).min(self.entries.len() as u32);
        for seq in self.base..window_end {
            let i = seq as usize;
            if self.acked[i] {
                continue;
            }
            if seq < self.next_new {
                if self.deadlines[i] <= now_us {
                    out.push(self.make_data(seq));
                    self.deadlines[i] = now_us + self.rto_us;
                    self.transmissions += 1;
                    self.retransmissions += 1;
                }
            } else {
                // Fresh transmission.
                out.push(self.make_data(seq));
                self.deadlines[i] = now_us + self.rto_us;
                self.transmissions += 1;
                self.next_new = seq + 1;
            }
        }
        out
    }

    fn make_data(&self, seq: u32) -> Message {
        Message::Data(DataPacket {
            fid: self.fid,
            seq,
            values: self.entries[seq as usize].clone(),
        })
    }

    /// Earliest time anything needs doing (next deadline), if any.
    pub fn next_deadline(&self) -> Option<u64> {
        if self.crashed || self.is_done() {
            return None;
        }
        if self.all_data_acked() {
            return Some(self.fin_deadline);
        }
        let window_end = (self.base + self.window).min(self.entries.len() as u32);
        let mut earliest = None;
        for seq in self.base..window_end {
            let i = seq as usize;
            if self.acked[i] {
                continue;
            }
            let t = if seq < self.next_new {
                self.deadlines[i]
            } else {
                0
            };
            earliest = Some(earliest.map_or(t, |e: u64| e.min(t)));
        }
        earliest
    }

    /// Handle an ACK (from the switch for pruned packets, from the master
    /// for delivered ones — the worker does not care which).
    pub fn on_ack(&mut self, seq: u32) {
        if self.crashed {
            return;
        }
        let i = seq as usize;
        if i < self.acked.len() && !self.acked[i] {
            self.acked[i] = true;
            while (self.base as usize) < self.acked.len() && self.acked[self.base as usize] {
                self.base += 1;
            }
        }
    }

    /// Handle the master's FIN-ACK.
    pub fn on_fin_ack(&mut self) {
        if !self.crashed && self.all_data_acked() {
            self.fin_acked = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(n: usize) -> Vec<Vec<u64>> {
        (0..n as u64).map(|i| vec![i]).collect()
    }

    fn seqs(msgs: &[Message]) -> Vec<u32> {
        msgs.iter()
            .filter_map(|m| match m {
                Message::Data(d) => Some(d.seq),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn initial_pump_fills_window() {
        let mut w = WorkerTx::new(1, entries(10), 4, 100);
        let out = w.pump(0);
        assert_eq!(seqs(&out), vec![0, 1, 2, 3]);
        // Nothing more until acks or timeouts.
        assert!(w.pump(50).is_empty());
    }

    #[test]
    fn acks_slide_window() {
        let mut w = WorkerTx::new(1, entries(10), 4, 100);
        w.pump(0);
        w.on_ack(0);
        w.on_ack(1);
        let out = w.pump(10);
        assert_eq!(seqs(&out), vec![4, 5]);
    }

    #[test]
    fn out_of_order_ack_does_not_slide_past_gap() {
        let mut w = WorkerTx::new(1, entries(10), 4, 100);
        w.pump(0);
        w.on_ack(2); // 0 and 1 still missing
        let out = w.pump(10);
        assert!(seqs(&out).is_empty(), "window base stuck at 0");
        w.on_ack(0);
        w.on_ack(1);
        let out = w.pump(20);
        assert_eq!(seqs(&out), vec![4, 5, 6]);
    }

    #[test]
    fn timeout_retransmits() {
        let mut w = WorkerTx::new(1, entries(3), 8, 100);
        w.pump(0);
        assert_eq!(w.transmissions, 3);
        let out = w.pump(100);
        assert_eq!(seqs(&out), vec![0, 1, 2]);
        assert_eq!(w.retransmissions, 3);
    }

    #[test]
    fn duplicate_acks_ignored() {
        let mut w = WorkerTx::new(1, entries(3), 8, 100);
        w.pump(0);
        w.on_ack(1);
        w.on_ack(1);
        w.on_ack(99); // out of range
        assert!(!w.is_done());
    }

    #[test]
    fn fin_after_all_data() {
        let mut w = WorkerTx::new(1, entries(2), 8, 100);
        w.pump(0);
        w.on_ack(0);
        w.on_ack(1);
        let out = w.pump(10);
        assert_eq!(out, vec![Message::Fin { fid: 1, seq: 2 }]);
        assert!(!w.is_done());
        w.on_fin_ack();
        assert!(w.is_done());
        assert!(w.pump(20).is_empty());
        assert_eq!(w.next_deadline(), None);
    }

    #[test]
    fn premature_fin_ack_ignored() {
        let mut w = WorkerTx::new(1, entries(2), 8, 100);
        w.pump(0);
        w.on_fin_ack(); // data not yet acked
        assert!(!w.is_done());
    }

    #[test]
    fn empty_stream_is_fin_only() {
        let mut w = WorkerTx::new(1, vec![], 8, 100);
        let out = w.pump(0);
        assert_eq!(out, vec![Message::Fin { fid: 1, seq: 0 }]);
        w.on_fin_ack();
        assert!(w.is_done());
    }

    #[test]
    fn crashed_worker_goes_silent_but_not_done() {
        let mut w = WorkerTx::new(1, entries(3), 8, 100);
        w.pump(0);
        w.on_ack(0);
        w.crash();
        assert!(w.is_crashed());
        assert!(w.pump(200).is_empty(), "no retransmissions after crash");
        assert_eq!(w.next_deadline(), None, "nothing scheduled after crash");
        w.on_ack(1);
        w.on_ack(2);
        w.on_fin_ack();
        assert!(!w.is_done(), "a crashed flow never completes");
    }

    #[test]
    fn deadline_reflects_state() {
        let mut w = WorkerTx::new(1, entries(2), 1, 100);
        assert_eq!(w.next_deadline(), Some(0), "fresh packet is due now");
        w.pump(0);
        assert_eq!(w.next_deadline(), Some(100), "RTO of seq 0");
        w.on_ack(0);
        assert_eq!(w.next_deadline(), Some(0), "seq 1 now in window, due");
    }
}
