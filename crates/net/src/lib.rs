//! # cheetah-net — the switch-assisted reliable transport (§7.2)
//!
//! Cheetah ships entries from CWorkers to the CMaster over UDP for low
//! latency, with a custom reliability layer. The twist: the switch prunes
//! packets, so the master alone cannot tell a pruned packet from a lost
//! one. The switch therefore *participates* in the protocol — it ACKs the
//! packets it prunes, and enforces in-order processing so its stateful
//! pruning algorithms see each entry exactly once:
//!
//! * `Y = X + 1` — in-order packet: process (prune or forward), advance `X`;
//!   if pruned, the **switch** sends the ACK, otherwise the master will.
//! * `Y ≤ X` — a retransmission of an already-processed packet: forward to
//!   the master *without* processing (its retransmission must not corrupt
//!   switch state; if the original was pruned, the master sees a harmless
//!   superset — every Cheetah algorithm tolerates supersets).
//! * `Y > X + 1` — a gap: drop and wait for the retransmission of `X + 1`.
//!
//! The crate provides the Figure 4 wire format ([`wire`]), the three
//! protocol state machines ([`worker`], [`switchnode`], [`master`]) and a
//! seeded discrete-event simulation of the lossy fabric ([`sim`]) used by
//! the correctness property tests and the protocol micro-benchmarks.
//!
//! # Examples
//!
//! One worker flow through a forward-everything switch over a lossy
//! fabric — every entry still arrives exactly once:
//!
//! ```
//! use cheetah_net::sim::{Simulation, SimulationConfig};
//! use cheetah_net::switchnode::SwitchNode;
//! use cheetah_net::worker::WorkerTx;
//!
//! let entries: Vec<Vec<u64>> = (0..50u64).map(|i| vec![i]).collect();
//! let workers = vec![WorkerTx::new(1, entries, 8, 500)];
//! let switch = SwitchNode::new(Box::new(|_, _| cheetah_core::Decision::Forward));
//! let cfg = SimulationConfig { loss_rate: 0.1, seed: 3, ..Default::default() };
//! let (master, stats) = Simulation::new(cfg).run(workers, switch);
//! assert!(stats.completed);
//! assert_eq!(master.into_delivered().len(), 50, "loss never loses entries");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod master;
pub mod sim;
pub mod switchnode;
pub mod wire;
pub mod worker;

pub use master::MasterRx;
pub use sim::{NetStats, Simulation, SimulationConfig};
pub use switchnode::SwitchNode;
pub use wire::{AckPacket, DataPacket, Message};
pub use worker::WorkerTx;
