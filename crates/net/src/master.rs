//! The CMaster receive state machine: ACK everything, deduplicate,
//! deliver entry values to the query completion layer.

use std::collections::HashMap;

use crate::wire::{AckPacket, DataPacket, Message};

/// Receive-side state for the master across all flows.
#[derive(Debug, Default)]
pub struct MasterRx {
    /// Per-flow received sequence numbers (dedup bitmap, grown lazily).
    received: HashMap<u16, Vec<bool>>,
    /// Delivered entries in arrival order: `(fid, seq, values)`.
    delivered: Vec<(u16, u32, Vec<u64>)>,
    /// Flows whose FIN arrived.
    finished: HashMap<u16, bool>,
    /// Statistics: duplicate data packets discarded.
    pub duplicates: u64,
}

impl MasterRx {
    /// A fresh master.
    pub fn new() -> Self {
        MasterRx::default()
    }

    /// Handle a data packet: always ACK; deliver if not seen before.
    pub fn on_data(&mut self, pkt: DataPacket) -> Message {
        let ack = Message::Ack(AckPacket {
            fid: pkt.fid,
            seq: pkt.seq,
            pruned: false,
        });
        let seen = self.received.entry(pkt.fid).or_default();
        let idx = pkt.seq as usize;
        if seen.len() <= idx {
            seen.resize(idx + 1, false);
        }
        if seen[idx] {
            self.duplicates += 1;
        } else {
            seen[idx] = true;
            self.delivered.push((pkt.fid, pkt.seq, pkt.values));
        }
        ack
    }

    /// Handle a FIN: record flow completion and acknowledge.
    pub fn on_fin(&mut self, fid: u16) -> Message {
        self.finished.insert(fid, true);
        Message::FinAck { fid }
    }

    /// Flow `fid`'s FIN has been received.
    pub fn is_finished(&self, fid: u16) -> bool {
        self.finished.get(&fid).copied().unwrap_or(false)
    }

    /// All `fids` have delivered their FIN.
    pub fn all_finished(&self, fids: &[u16]) -> bool {
        fids.iter()
            .all(|f| self.finished.get(f).copied().unwrap_or(false))
    }

    /// Entries delivered so far, in arrival order.
    pub fn delivered(&self) -> &[(u16, u32, Vec<u64>)] {
        &self.delivered
    }

    /// Consume the master, returning the delivered entries.
    pub fn into_delivered(self) -> Vec<(u16, u32, Vec<u64>)> {
        self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(fid: u16, seq: u32, v: u64) -> DataPacket {
        DataPacket {
            fid,
            seq,
            values: vec![v],
        }
    }

    #[test]
    fn delivers_and_acks() {
        let mut m = MasterRx::new();
        let ack = m.on_data(data(1, 0, 42));
        assert_eq!(
            ack,
            Message::Ack(AckPacket {
                fid: 1,
                seq: 0,
                pruned: false
            })
        );
        assert_eq!(m.delivered().len(), 1);
    }

    #[test]
    fn duplicates_acked_but_not_redelivered() {
        let mut m = MasterRx::new();
        m.on_data(data(1, 5, 42));
        let ack = m.on_data(data(1, 5, 42));
        assert!(matches!(ack, Message::Ack(_)), "duplicates still acked");
        assert_eq!(m.delivered().len(), 1);
        assert_eq!(m.duplicates, 1);
    }

    #[test]
    fn flows_independent() {
        let mut m = MasterRx::new();
        m.on_data(data(1, 0, 1));
        m.on_data(data(2, 0, 2));
        assert_eq!(m.delivered().len(), 2);
    }

    #[test]
    fn fin_tracking() {
        let mut m = MasterRx::new();
        assert!(!m.all_finished(&[1, 2]));
        assert!(!m.is_finished(1));
        assert_eq!(m.on_fin(1), Message::FinAck { fid: 1 });
        assert!(m.is_finished(1));
        assert!(!m.all_finished(&[1, 2]));
        m.on_fin(2);
        assert!(m.all_finished(&[1, 2]));
        assert!(m.all_finished(&[]));
    }

    #[test]
    fn out_of_order_delivery_accepted() {
        // The master does not require order (the switch enforces
        // processing order; retransmissions may arrive late).
        let mut m = MasterRx::new();
        m.on_data(data(1, 9, 9));
        m.on_data(data(1, 3, 3));
        assert_eq!(m.delivered().len(), 2);
    }
}
