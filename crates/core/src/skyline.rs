//! SKYLINE pruning via projection (§4.4, Example 6; Appendix D).
//!
//! A SKYLINE query returns the Pareto frontier: points not dominated by any
//! other point (`y` dominates `x` iff `yᵢ ≥ xᵢ` on every dimension with at
//! least one strict inequality; we maximize all dimensions as the paper
//! does). The switch cannot store and compare many multi-dimensional
//! points, so Cheetah **projects** each point to a single score
//! `h: ℝᴰ → ℝ`, monotone in every dimension, guaranteeing
//! `x dominated by y ⇒ h(x) ≤ h(y)`. The switch keeps the `w` highest-score
//! points seen (a rolling minimum over `w` two-stage slots) and prunes any
//! arrival dominated by a stored point. Dominated points can never be
//! output, and stored witnesses were themselves forwarded on arrival, so
//! the master reconstructs the exact skyline.
//!
//! Projections (Appendix D):
//!
//! * **Sum** `h(x) = Σxᵢ` — cheap but biased toward large-range dimensions;
//! * **Product** `h(x) = Πxᵢ` — better balanced but needs multiplication,
//!   which switches lack (kept here as an exact reference);
//! * **APH** (Approximate Product Heuristic) — `Σ ⌊β·log₂ xᵢ⌉` using a
//!   2¹⁶-entry lookup table plus a TCAM most-significant-bit finder for
//!   wide values: `log₂ z ≈ log₂ z′ + (ℓ − 15)` where `z′` is the 16-bit
//!   window at the leading one (bit `ℓ`);
//! * **Baseline** — stores the first `w` points with no score (the
//!   comparison line in Figure 10b).

use crate::decision::{Decision, RowPruner};
use crate::resources::{table2, ResourceUsage};

/// `y` dominates `x`: at least as large on all dimensions, larger on one.
#[inline]
pub fn dominates(y: &[u64], x: &[u64]) -> bool {
    debug_assert_eq!(y.len(), x.len());
    let mut strict = false;
    for (a, b) in y.iter().zip(x.iter()) {
        if a < b {
            return false;
        }
        if a > b {
            strict = true;
        }
    }
    strict
}

/// Optimization direction (the paper's footnote 4: "we can extend the
/// solution to support minimizing all dimensions with small
/// modifications" — the modification being a coordinate reflection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Direction {
    /// Pareto frontier of maxima (the paper's default).
    #[default]
    MaximizeAll,
    /// Pareto frontier of minima.
    MinimizeAll,
}

impl Direction {
    /// Map a coordinate into the maximizing space (an involution).
    #[inline]
    pub fn transform(self, v: u64) -> u64 {
        match self {
            Direction::MaximizeAll => v,
            Direction::MinimizeAll => u64::MAX - v,
        }
    }
}

/// `y` dominates `x` when minimizing all dimensions.
#[inline]
pub fn dominates_min(y: &[u64], x: &[u64]) -> bool {
    debug_assert_eq!(y.len(), x.len());
    let mut strict = false;
    for (a, b) in y.iter().zip(x.iter()) {
        if a > b {
            return false;
        }
        if a < b {
            strict = true;
        }
    }
    strict
}

/// Fixed-point approximate `log₂` table for APH (Appendix D).
///
/// `β = 2^frac_bits` is the fixed-point scale: `approx_log(v) ≈ β·log₂ v`.
/// Values wider than 16 bits use the MSB window trick, which the switch
/// implements with 64 TCAM rules per dimension (Table 2's `64·D` TCAM).
#[derive(Debug, Clone)]
pub struct ApproxLog {
    frac_bits: u32,
    table: Vec<u32>,
}

impl ApproxLog {
    /// Build the 2¹⁶-entry control-plane table.
    pub fn new(frac_bits: u32) -> Self {
        assert!(frac_bits <= 16, "fixed-point scale too large for u32 table");
        let beta = f64::from(1u32 << frac_bits);
        let mut table = vec![0u32; 1 << 16];
        for (a, slot) in table.iter_mut().enumerate().skip(1) {
            *slot = (beta * (a as f64).log2()).round() as u32;
        }
        ApproxLog { frac_bits, table }
    }

    /// Approximate `β·log₂ v`. `v = 0` maps to 0 (points are assumed to
    /// have positive coordinates; a zero coordinate scores as 1 would).
    #[inline]
    pub fn log2_fixed(&self, v: u64) -> u64 {
        if v < (1 << 16) {
            u64::from(self.table[v as usize])
        } else {
            // ℓ = index of the leading one (TCAM lookup on hardware).
            let l = 63 - v.leading_zeros();
            let window = (v >> (l - 15)) as usize; // 16 bits, top bit set
            u64::from(self.table[window]) + (u64::from(l) - 15) * u64::from(1u32 << self.frac_bits)
        }
    }
}

/// Scoring heuristic for the stored-point replacement policy.
#[derive(Debug, Clone)]
pub enum Heuristic {
    /// Sum of coordinates.
    Sum,
    /// Exact product of coordinates (not switch-implementable; reference).
    Product,
    /// Approximate Product Heuristic: sum of fixed-point logs.
    Aph(ApproxLog),
    /// No score: keep the first `w` points (Figure 10b's "Baseline").
    Baseline,
}

impl Heuristic {
    /// The default APH configuration (8 fractional bits).
    pub fn aph_default() -> Self {
        Heuristic::Aph(ApproxLog::new(8))
    }

    /// Project a point to its scalar score.
    fn score(&self, point: &[u64]) -> u128 {
        match self {
            Heuristic::Sum => point.iter().map(|&v| u128::from(v)).sum(),
            Heuristic::Product => point
                .iter()
                .map(|&v| u128::from(v.max(1)))
                .fold(1u128, |acc, v| acc.saturating_mul(v)),
            Heuristic::Aph(log) => point.iter().map(|&v| u128::from(log.log2_fixed(v))).sum(),
            Heuristic::Baseline => 0,
        }
    }

    fn short_name(&self) -> &'static str {
        match self {
            Heuristic::Sum => "skyline-sum",
            Heuristic::Product => "skyline-product",
            Heuristic::Aph(_) => "skyline-aph",
            Heuristic::Baseline => "skyline-baseline",
        }
    }
}

/// The SKYLINE pruner: `w` stored points with projection-driven
/// replacement.
#[derive(Debug, Clone)]
pub struct SkylinePruner {
    dims: usize,
    w: usize,
    heuristic: Heuristic,
    direction: Direction,
    /// Flattened `w × dims` stored points (in the maximizing space), kept
    /// sorted descending by score.
    points: Vec<u64>,
    scores: Vec<u128>,
    len: usize,
}

impl SkylinePruner {
    /// Create a pruner for `dims`-dimensional points storing `w` of them,
    /// maximizing all dimensions. Table 2 default: `D = 2, w = 10`.
    pub fn new(dims: usize, w: usize, heuristic: Heuristic) -> Self {
        Self::with_direction(dims, w, heuristic, Direction::MaximizeAll)
    }

    /// A minimizing-skyline pruner (footnote 4): coordinates are reflected
    /// into the maximizing space on entry, so every heuristic and the
    /// storage logic apply unchanged.
    pub fn new_min(dims: usize, w: usize, heuristic: Heuristic) -> Self {
        Self::with_direction(dims, w, heuristic, Direction::MinimizeAll)
    }

    /// Create a pruner with an explicit optimization direction.
    pub fn with_direction(
        dims: usize,
        w: usize,
        heuristic: Heuristic,
        direction: Direction,
    ) -> Self {
        assert!(dims > 0 && w > 0);
        SkylinePruner {
            dims,
            w,
            heuristic,
            direction,
            points: vec![0; w * dims],
            scores: vec![0; w],
            len: 0,
        }
    }

    /// Process one point (maximizing semantics on every dimension).
    ///
    /// Prunes iff a stored point dominates it. Non-dominated points are
    /// always forwarded and considered for storage: under a scoring
    /// heuristic they displace the lowest-score stored point when they
    /// score higher (the hardware rolling minimum); under `Baseline` only
    /// the first `w` arrivals are stored.
    pub fn process(&mut self, point: &[u64]) -> Decision {
        assert_eq!(point.len(), self.dims, "dimension mismatch");
        if self.direction == Direction::MinimizeAll {
            // Reflect into the maximizing space; domination is preserved
            // (dominates_min(y, x) ⟺ dominates(T(y), T(x))).
            let transformed: Vec<u64> =
                point.iter().map(|&v| self.direction.transform(v)).collect();
            return self.process_max(&transformed);
        }
        self.process_max(point)
    }

    fn process_max(&mut self, point: &[u64]) -> Decision {
        for i in 0..self.len {
            let stored = &self.points[i * self.dims..(i + 1) * self.dims];
            if dominates(stored, point) {
                return Decision::Prune;
            }
        }
        let score = self.heuristic.score(point);
        if self.len < self.w {
            let insert_at = self.scores[..self.len].partition_point(|&s| s >= score);
            self.insert_at(insert_at, point, score);
            self.len += 1;
        } else if !matches!(self.heuristic, Heuristic::Baseline) && score > self.scores[self.w - 1]
        {
            // Displace the minimum-score point (it falls off the rolling
            // minimum and, on hardware, rides out in the packet body).
            let insert_at = self.scores[..self.w].partition_point(|&s| s >= score);
            self.evict_last_and_insert(insert_at, point, score);
        }
        Decision::Forward
    }

    fn insert_at(&mut self, idx: usize, point: &[u64], score: u128) {
        // Shift [idx..len] one slot right, then write.
        self.scores[idx..self.len + 1].rotate_right(1);
        self.points[idx * self.dims..(self.len + 1) * self.dims].rotate_right(self.dims);
        self.scores[idx] = score;
        self.points[idx * self.dims..(idx + 1) * self.dims].copy_from_slice(point);
    }

    fn evict_last_and_insert(&mut self, idx: usize, point: &[u64], score: u128) {
        self.scores[idx..self.w].rotate_right(1);
        self.points[idx * self.dims..self.w * self.dims].rotate_right(self.dims);
        self.scores[idx] = score;
        self.points[idx * self.dims..(idx + 1) * self.dims].copy_from_slice(point);
    }

    /// Currently stored prune points (for inspection / experiments).
    pub fn stored(&self) -> impl Iterator<Item = &[u64]> {
        self.points[..self.len * self.dims].chunks_exact(self.dims)
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Table 2 resources for this configuration.
    pub fn resources(&self) -> ResourceUsage {
        match self.heuristic {
            Heuristic::Aph(_) => table2::skyline_aph(self.dims as u32, self.w as u32),
            _ => table2::skyline_sum(self.dims as u32, self.w as u32),
        }
    }
}

impl RowPruner for SkylinePruner {
    fn process_row(&mut self, row: &[u64]) -> Decision {
        self.process(&row[..self.dims])
    }

    fn process_block(&mut self, cols: &[&[u64]], out: &mut [Decision]) {
        // Gather each point into a stack buffer (skylines are low-D; the
        // heap-gathering default only runs for >16 dimensions).
        if self.dims > 16 {
            let mut row = Vec::with_capacity(self.dims);
            for (i, d) in out.iter_mut().enumerate() {
                row.clear();
                row.extend(cols[..self.dims].iter().map(|c| c[i]));
                *d = self.process(&row);
            }
            return;
        }
        let mut point = [0u64; 16];
        for (i, d) in out.iter_mut().enumerate() {
            for (p, c) in point[..self.dims].iter_mut().zip(cols) {
                *p = c[i];
            }
            *d = self.process(&point[..self.dims]);
        }
    }

    fn reset(&mut self) {
        self.len = 0;
    }

    fn name(&self) -> &'static str {
        self.heuristic.short_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Exact skyline of a point set (quadratic reference).
    fn true_skyline(points: &[Vec<u64>]) -> Vec<Vec<u64>> {
        points
            .iter()
            .filter(|p| !points.iter().any(|q| dominates(q, p)))
            .cloned()
            .collect()
    }

    fn random_points(n: usize, dims: usize, max: u64, seed: u64) -> Vec<Vec<u64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dims).map(|_| rng.gen_range(1..=max)).collect())
            .collect()
    }

    fn master_skyline(pruner: &mut SkylinePruner, points: &[Vec<u64>]) -> Vec<Vec<u64>> {
        let forwarded: Vec<Vec<u64>> = points
            .iter()
            .filter(|p| pruner.process(p).is_forward())
            .cloned()
            .collect();
        true_skyline(&forwarded)
    }

    fn sorted(mut v: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn dominates_definition() {
        assert!(dominates(&[5, 5], &[3, 4]));
        assert!(dominates(&[5, 5], &[5, 4]));
        assert!(!dominates(&[5, 5], &[5, 5]), "equal points don't dominate");
        assert!(!dominates(&[5, 3], &[3, 5]), "incomparable");
    }

    #[test]
    fn paper_running_example() {
        // Ratings: taste, texture. Skyline of {Pizza(7,5), Cheetos(8,6),
        // Jello(9,4), Burger(5,7), Fries(3,3)} = {Cheetos, Jello, Burger}.
        let pts = vec![
            vec![7, 5], // Pizza — dominated by Cheetos
            vec![8, 6], // Cheetos
            vec![9, 4], // Jello
            vec![5, 7], // Burger
            vec![3, 3], // Fries — dominated
        ];
        let sky = sorted(true_skyline(&pts));
        assert_eq!(sky, sorted(vec![vec![8, 6], vec![9, 4], vec![5, 7]]));
        // The pruner must reproduce it for every heuristic.
        for h in [
            Heuristic::Sum,
            Heuristic::Product,
            Heuristic::aph_default(),
            Heuristic::Baseline,
        ] {
            let mut p = SkylinePruner::new(2, 3, h);
            assert_eq!(sorted(master_skyline(&mut p, &pts)), sky);
        }
    }

    #[test]
    fn never_prunes_skyline_point_2d() {
        for seed in 0..5 {
            let pts = random_points(5_000, 2, 10_000, seed);
            let truth = sorted(true_skyline(&pts));
            for h in [
                Heuristic::Sum,
                Heuristic::aph_default(),
                Heuristic::Baseline,
            ] {
                let mut p = SkylinePruner::new(2, 8, h);
                let got = sorted(master_skyline(&mut p, &pts));
                assert_eq!(got, truth, "seed {seed}: master skyline differs");
            }
        }
    }

    #[test]
    fn never_prunes_skyline_point_4d() {
        let pts = random_points(2_000, 4, 100, 9);
        let truth = sorted(true_skyline(&pts));
        let mut p = SkylinePruner::new(4, 10, Heuristic::aph_default());
        assert_eq!(sorted(master_skyline(&mut p, &pts)), truth);
    }

    #[test]
    fn duplicates_are_forwarded() {
        // Equal points do not dominate each other, so duplicates of a
        // frontier point must survive (they may carry different rows).
        let mut p = SkylinePruner::new(2, 4, Heuristic::Sum);
        assert!(p.process(&[10, 10]).is_forward());
        assert!(p.process(&[10, 10]).is_forward());
        assert!(p.process(&[3, 3]).is_prune());
    }

    #[test]
    fn rolling_minimum_learns_good_points() {
        // A strong point arriving late must displace weak stored points
        // under scoring heuristics (unlike Baseline).
        let weak: Vec<Vec<u64>> = (1..=8).map(|i| vec![i, 9 - i]).collect();
        let mut sum = SkylinePruner::new(2, 4, Heuristic::Sum);
        let mut base = SkylinePruner::new(2, 4, Heuristic::Baseline);
        for p in &weak {
            sum.process(p);
            base.process(p);
        }
        sum.process(&[100, 100]);
        base.process(&[100, 100]);
        // Now a mediocre point dominated by (100,100):
        assert!(
            sum.process(&[50, 50]).is_prune(),
            "sum heuristic should have stored (100,100)"
        );
        assert!(
            base.process(&[50, 50]).is_forward(),
            "baseline kept only the first w points"
        );
    }

    #[test]
    fn aph_tracks_product_ordering() {
        let log = ApproxLog::new(8);
        let aph = Heuristic::Aph(log);
        let prod = Heuristic::Product;
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..2_000 {
            let a: Vec<u64> = (0..3).map(|_| rng.gen_range(1..1u64 << 40)).collect();
            let b: Vec<u64> = (0..3).map(|_| rng.gen_range(1..1u64 << 40)).collect();
            let (pa, pb) = (prod.score(&a), prod.score(&b));
            // A 2x product gap is far beyond APH rounding error.
            if pa >= pb.saturating_mul(2) {
                assert!(
                    aph.score(&a) >= aph.score(&b),
                    "APH inverted a clear product ordering: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn approx_log_wide_values() {
        let log = ApproxLog::new(8);
        let beta = 256.0;
        for &v in &[
            1u64,
            2,
            3,
            65_535,
            65_536,
            1 << 20,
            (1 << 40) + 12345,
            u64::MAX,
        ] {
            let approx = log.log2_fixed(v) as f64 / beta;
            let exact = (v as f64).log2();
            assert!(
                (approx - exact).abs() < 0.01,
                "log2({v}): approx {approx}, exact {exact}"
            );
        }
        assert_eq!(log.log2_fixed(0), 0);
        assert_eq!(log.log2_fixed(1), 0);
    }

    #[test]
    fn sum_bias_with_mismatched_ranges() {
        // One dimension in [0,255], the other in [0,65535] (§4.4): Sum
        // effectively ranks by the big dimension; Product balances. Check
        // that Product/APH store more balanced points and prune more.
        let mut rng = StdRng::seed_from_u64(5);
        let pts: Vec<Vec<u64>> = (0..20_000)
            .map(|_| vec![rng.gen_range(1..256u64), rng.gen_range(1..65_536u64)])
            .collect();
        let mut pruned_sum = 0u64;
        let mut pruned_aph = 0u64;
        let mut sum = SkylinePruner::new(2, 6, Heuristic::Sum);
        let mut aph = SkylinePruner::new(2, 6, Heuristic::aph_default());
        for p in &pts {
            if sum.process(p).is_prune() {
                pruned_sum += 1;
            }
            if aph.process(p).is_prune() {
                pruned_aph += 1;
            }
        }
        assert!(
            pruned_aph >= pruned_sum,
            "APH ({pruned_aph}) should prune at least as much as Sum ({pruned_sum}) under range mismatch"
        );
    }

    #[test]
    fn resources_match_table2() {
        let sum = SkylinePruner::new(2, 10, Heuristic::Sum);
        assert_eq!(sum.resources().stages, 21);
        let aph = SkylinePruner::new(2, 10, Heuristic::aph_default());
        assert_eq!(aph.resources().stages, 23);
        assert_eq!(aph.resources().tcam_entries, 128);
    }

    #[test]
    fn reset_and_row_interface() {
        let mut p = SkylinePruner::new(2, 4, Heuristic::Sum);
        assert!(p.process_row(&[10, 10]).is_forward());
        assert!(p.process_row(&[1, 1]).is_prune());
        p.reset();
        assert!(p.process_row(&[1, 1]).is_forward());
        assert_eq!(p.name(), "skyline-sum");
    }

    #[test]
    fn stored_points_capped_at_w() {
        let mut p = SkylinePruner::new(2, 3, Heuristic::Sum);
        // Mutually incomparable points: (i, 1000-i).
        for i in 1..100u64 {
            p.process(&[i, 1000 - i]);
        }
        assert_eq!(p.stored().count(), 3);
    }

    #[test]
    fn dominates_min_definition() {
        assert!(dominates_min(&[1, 2], &[3, 4]));
        assert!(dominates_min(&[1, 4], &[1, 5]));
        assert!(!dominates_min(&[1, 1], &[1, 1]));
        assert!(!dominates_min(&[1, 9], &[9, 1]));
    }

    #[test]
    fn direction_transform_is_involution_and_order_reversing() {
        let d = Direction::MinimizeAll;
        for &v in &[0u64, 1, 42, u64::MAX] {
            assert_eq!(d.transform(d.transform(v)), v);
        }
        assert!(d.transform(1) > d.transform(2));
        assert_eq!(Direction::MaximizeAll.transform(7), 7);
    }

    /// Minimizing skyline never prunes a min-frontier point.
    #[test]
    fn minimizing_skyline_exact() {
        fn true_min_skyline(points: &[Vec<u64>]) -> Vec<Vec<u64>> {
            points
                .iter()
                .filter(|p| !points.iter().any(|q| dominates_min(q, p)))
                .cloned()
                .collect()
        }
        for seed in 0..3 {
            let pts = random_points(3_000, 2, 5_000, 100 + seed);
            let truth = sorted(true_min_skyline(&pts));
            for h in [
                Heuristic::Sum,
                Heuristic::aph_default(),
                Heuristic::Baseline,
            ] {
                let mut p = SkylinePruner::new_min(2, 8, h);
                let survivors: Vec<Vec<u64>> = pts
                    .iter()
                    .filter(|pt| p.process(pt).is_forward())
                    .cloned()
                    .collect();
                assert_eq!(
                    sorted(true_min_skyline(&survivors)),
                    truth,
                    "seed {seed}: minimizing skyline diverged"
                );
            }
        }
    }

    #[test]
    fn minimizing_paper_example() {
        // Minimizing taste/texture on the Ratings table: the min-frontier
        // is just Fries (3,3), which dominates everything.
        let mut p = SkylinePruner::new_min(2, 4, Heuristic::Sum);
        assert!(p.process(&[3, 3]).is_forward()); // Fries
        assert!(p.process(&[7, 5]).is_prune()); // Pizza
        assert!(p.process(&[8, 6]).is_prune()); // Cheetos
        assert!(p.process(&[5, 7]).is_prune()); // Burger
    }
}
