//! Multi-entry packets (§9, "Packing multiple entries per packet").
//!
//! Cheetah spends much of its time transmitting one-entry packets; packing
//! several entries per packet cuts that cost, but the switch cannot give
//! each entry its own pipeline pass. The paper's rule: the per-stage ALUs
//! process the packet's entries in parallel, and **entries that collide on
//! a register row are left unprocessed rather than pruned** — the
//! algorithms tolerate unprocessed entries (they are forwarded), never
//! wrongly-pruned ones. "Our DISTINCT, TOP N, and GROUP BY algorithms
//! support multiple entries per packet while maintaining correctness."
//!
//! The wrappers here implement exactly that: per packet, at most one entry
//! per matrix row is processed; colliding entries are forwarded
//! unprocessed and counted in [`BatchStats::skipped`], so experiments can
//! quantify the pruning-rate cost of batching against its packet-count
//! savings.

use crate::decision::Decision;

pub use adapters::{DistinctBatchAccess, GroupByBatchAccess, TopNBatchAccess};

/// Counters for batched processing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Packets processed.
    pub packets: u64,
    /// Entries processed (through the algorithm).
    pub processed: u64,
    /// Entries forwarded *unprocessed* due to same-row collisions.
    pub skipped: u64,
    /// Entries pruned.
    pub pruned: u64,
}

impl BatchStats {
    /// Fraction of entries that survived (forwarded, processed or not).
    pub fn unpruned_fraction(&self) -> f64 {
        let total = self.processed + self.skipped;
        if total == 0 {
            0.0
        } else {
            (total - self.pruned) as f64 / total as f64
        }
    }
}

/// A pruner exposing per-entry row indices plus single-entry processing —
/// what the batching wrapper needs. Implemented by DISTINCT, randomized
/// TOP N and GROUP BY (the algorithms §9 names).
pub trait BatchAccess {
    /// The register row the entry would touch (collision domain).
    fn row_of(&mut self, entry: &[u64]) -> usize;
    /// Process one entry normally.
    fn process_one(&mut self, entry: &[u64]) -> Decision;
}

/// Batches entries per packet over any [`BatchAccess`] pruner.
#[derive(Debug)]
pub struct BatchedPruner<P: BatchAccess> {
    inner: P,
    /// Scratch: rows already used by this packet (small, reused).
    rows_in_packet: Vec<usize>,
    /// Statistics.
    pub stats: BatchStats,
}

impl<P: BatchAccess> BatchedPruner<P> {
    /// Wrap a pruner for multi-entry packets.
    pub fn new(inner: P) -> Self {
        BatchedPruner {
            inner,
            rows_in_packet: Vec::with_capacity(8),
            stats: BatchStats::default(),
        }
    }

    /// Process one packet of entries; one decision per entry.
    ///
    /// Entries whose row is already taken by an earlier entry of the same
    /// packet are forwarded unprocessed (never pruned), per §9.
    pub fn process_packet(&mut self, entries: &[&[u64]]) -> Vec<Decision> {
        self.stats.packets += 1;
        self.rows_in_packet.clear();
        let mut out = Vec::with_capacity(entries.len());
        for &e in entries {
            let row = self.inner.row_of(e);
            if self.rows_in_packet.contains(&row) {
                self.stats.skipped += 1;
                out.push(Decision::Forward);
                continue;
            }
            self.rows_in_packet.push(row);
            let d = self.inner.process_one(e);
            self.stats.processed += 1;
            if d.is_prune() {
                self.stats.pruned += 1;
            }
            out.push(d);
        }
        out
    }

    /// The wrapped pruner.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Mutable access to the wrapped pruner (e.g. for reset).
    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }
}

/// Re-exports of the three adapters §9 names (defined next to their
/// algorithms, where the row hashing is visible).
pub mod adapters {
    pub use crate::distinct::DistinctBatchAccess;
    pub use crate::groupby::GroupByBatchAccess;
    pub use crate::topn::TopNBatchAccess;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distinct::{DistinctPruner, EvictionPolicy};
    use crate::groupby::{Extremum, GroupByPruner};
    use crate::topn::RandomizedTopN;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::{HashMap, HashSet};

    #[test]
    fn batched_distinct_never_prunes_first_occurrence() {
        let inner = DistinctBatchAccess::new(DistinctPruner::new(32, 2, EvictionPolicy::Lru, 1));
        let mut b = BatchedPruner::new(inner);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = HashSet::new();
        for _ in 0..2_000 {
            let packet: Vec<Vec<u64>> = (0..4).map(|_| vec![rng.gen_range(1..150u64)]).collect();
            let refs: Vec<&[u64]> = packet.iter().map(|v| v.as_slice()).collect();
            let ds = b.process_packet(&refs);
            for (e, d) in packet.iter().zip(&ds) {
                if seen.insert(e[0]) {
                    assert!(d.is_forward(), "first occurrence of {} pruned", e[0]);
                }
            }
        }
        assert!(b.stats.skipped > 0, "collisions should occur at 32 rows");
        assert!(b.stats.pruned > 0, "non-colliding duplicates still pruned");
    }

    #[test]
    fn batched_groupby_master_exact() {
        let inner = GroupByBatchAccess::new(GroupByPruner::new(16, 2, Extremum::Max, 2));
        let mut b = BatchedPruner::new(inner);
        let mut rng = StdRng::seed_from_u64(2);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut master: HashMap<u64, u64> = HashMap::new();
        for _ in 0..3_000 {
            let packet: Vec<Vec<u64>> = (0..4)
                .map(|_| vec![rng.gen_range(1..60u64), rng.gen_range(0..10_000u64)])
                .collect();
            let refs: Vec<&[u64]> = packet.iter().map(|v| v.as_slice()).collect();
            let ds = b.process_packet(&refs);
            for (e, d) in packet.iter().zip(&ds) {
                let t = truth.entry(e[0]).or_insert(0);
                *t = (*t).max(e[1]);
                if d.is_forward() {
                    let m = master.entry(e[0]).or_insert(0);
                    *m = (*m).max(e[1]);
                }
            }
        }
        assert_eq!(master, truth, "batched GROUP BY lost a maximum");
    }

    #[test]
    fn batched_topn_superset() {
        let inner = TopNBatchAccess::new(RandomizedTopN::new(64, 4, 3));
        let mut b = BatchedPruner::new(inner);
        let mut rng = StdRng::seed_from_u64(3);
        let mut all = Vec::new();
        let mut forwarded = Vec::new();
        for _ in 0..5_000 {
            let packet: Vec<Vec<u64>> = (0..4)
                .map(|_| vec![rng.gen_range(0..1_000_000u64)])
                .collect();
            let refs: Vec<&[u64]> = packet.iter().map(|v| v.as_slice()).collect();
            let ds = b.process_packet(&refs);
            for (e, d) in packet.iter().zip(&ds) {
                all.push(e[0]);
                if d.is_forward() {
                    forwarded.push(e[0]);
                }
            }
        }
        all.sort_unstable_by(|a, b| b.cmp(a));
        forwarded.sort_unstable_by(|a, b| b.cmp(a));
        // Top-20 multiset inclusion.
        let mut fi = 0;
        for &t in all.iter().take(20) {
            while fi < forwarded.len() && forwarded[fi] > t {
                fi += 1;
            }
            assert!(
                fi < forwarded.len() && forwarded[fi] == t,
                "top value {t} missing under batching"
            );
            fi += 1;
        }
    }

    #[test]
    fn larger_packets_skip_more_but_stay_correct() {
        let run = |per_packet: usize| {
            let inner = DistinctBatchAccess::new(DistinctPruner::new(8, 2, EvictionPolicy::Lru, 4));
            let mut b = BatchedPruner::new(inner);
            let mut rng = StdRng::seed_from_u64(5);
            for _ in 0..8_000 / per_packet {
                let packet: Vec<Vec<u64>> = (0..per_packet)
                    .map(|_| vec![rng.gen_range(1..40u64)])
                    .collect();
                let refs: Vec<&[u64]> = packet.iter().map(|v| v.as_slice()).collect();
                b.process_packet(&refs);
            }
            b.stats
        };
        let small = run(2);
        let large = run(8);
        let skip_rate = |s: BatchStats| s.skipped as f64 / (s.processed + s.skipped) as f64;
        assert!(
            skip_rate(large) > skip_rate(small),
            "bigger packets must collide more: {:?} vs {:?}",
            large,
            small
        );
        // And the packet count shrinks proportionally — the §9 payoff.
        assert!(large.packets * 3 < small.packets);
    }
}
