//! Running multiple queries concurrently on one switch (§6).
//!
//! Reprogramming a Tofino takes upwards of a minute, so Cheetah pre-compiles
//! the algorithm *family* and packs several live queries onto the pipeline,
//! splitting ALU/SRAM between them. Every packet carries a flow id (`fid`,
//! Figure 4); all packed queries compute a prune/no-prune bit and one final
//! stage selects the bit for the packet's `fid` — modelled by
//! [`MultiQueryPruner`]. For *combined* queries where one stream feeds
//! several operators at once (the Big Data `A + B` run in Figure 5),
//! [`CombinedPruner`] forwards a packet if **any** constituent still needs
//! it.
//!
//! The actual stage/ALU packing feasibility check lives in `cheetah-pisa`
//! (`pack`), which knows per-stage budgets; here we provide the dataplane
//! semantics plus a coarse whole-switch fit check via
//! [`crate::resources::ResourceUsage::fits`].

use crate::decision::{Decision, RowPruner};
use crate::resources::{ResourceUsage, SwitchModel};

/// A pruner registered under a flow id.
pub struct PackedQuery {
    /// Flow id carried in the packet header.
    pub fid: u16,
    /// The query's pruning algorithm.
    pub pruner: Box<dyn RowPruner + Send>,
    /// Declared switch resources (used for the fit check).
    pub resources: ResourceUsage,
}

impl std::fmt::Debug for PackedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackedQuery")
            .field("fid", &self.fid)
            .field("name", &self.pruner.name())
            .field("resources", &self.resources)
            .finish()
    }
}

/// Dispatches packets to the pruner matching their flow id.
///
/// Packets with an unknown `fid` are forwarded untouched — the switch is
/// transparent to traffic that is not part of any accelerated query (§3:
/// "fully compatible with other network functions sharing the network").
#[derive(Debug, Default)]
pub struct MultiQueryPruner {
    queries: Vec<PackedQuery>,
}

impl MultiQueryPruner {
    /// An empty packing.
    pub fn new() -> Self {
        MultiQueryPruner::default()
    }

    /// Register a query under `fid`. Panics on duplicate fids (the control
    /// plane owns fid allocation).
    pub fn add(&mut self, fid: u16, pruner: Box<dyn RowPruner + Send>, resources: ResourceUsage) {
        assert!(
            self.queries.iter().all(|q| q.fid != fid),
            "duplicate fid {fid}"
        );
        self.queries.push(PackedQuery {
            fid,
            pruner,
            resources,
        });
    }

    /// Number of packed queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when no queries are packed.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Process a packet belonging to flow `fid`.
    pub fn process(&mut self, fid: u16, row: &[u64]) -> Decision {
        match self.queries.iter_mut().find(|q| q.fid == fid) {
            Some(q) => q.pruner.process_row(row),
            None => Decision::Forward,
        }
    }

    /// Process a whole block of flow-`fid` packets through that flow's
    /// pruner — the serving layer's path: one shared stream scan hands
    /// each packed query its own column views and `Decision` lane, and
    /// this routes the block to the right per-query state. Unknown fids
    /// forward every entry (the transparent-switch rule of [`Self::process`]).
    pub fn process_block(&mut self, fid: u16, cols: &[&[u64]], out: &mut [Decision]) {
        match self.queries.iter_mut().find(|q| q.fid == fid) {
            Some(q) => q.pruner.process_block(cols, out),
            None => out.fill(Decision::Forward),
        }
    }

    /// Budget-aware [`Self::add`]: admit the query only if the packing
    /// still fits `model` with it included. On overflow the pruner is
    /// handed back so the caller can spill the query to software (§6: the
    /// control plane refuses flows the pipeline cannot host). Panics on
    /// duplicate fids, like `add`.
    pub fn try_add(
        &mut self,
        fid: u16,
        pruner: Box<dyn RowPruner + Send>,
        resources: ResourceUsage,
        model: &SwitchModel,
    ) -> Result<(), Box<dyn RowPruner + Send>> {
        assert!(
            self.queries.iter().all(|q| q.fid != fid),
            "duplicate fid {fid}"
        );
        if !self.total_resources().plus(resources).fits(model) {
            return Err(pruner);
        }
        self.queries.push(PackedQuery {
            fid,
            pruner,
            resources,
        });
        Ok(())
    }

    /// Total declared resources (conservative: independent stages).
    pub fn total_resources(&self) -> ResourceUsage {
        self.queries
            .iter()
            .fold(ResourceUsage::default(), |acc, q| acc.plus(q.resources))
    }

    /// Whole-switch feasibility of the packing (coarse; the per-stage
    /// placer in `cheetah-pisa` can fit more by sharing stages).
    pub fn fits(&self, model: &SwitchModel) -> bool {
        self.total_resources().fits(model)
    }

    /// Reset every packed query's state.
    pub fn reset_all(&mut self) {
        for q in &mut self.queries {
            q.pruner.reset();
        }
    }
}

/// A combined query: one data stream serving several operators at once.
///
/// All sub-pruners observe every row (their state must stay in sync with
/// the stream); the packet survives if any sub-query still needs it. This
/// is how the Big Data `A + B` combined run shares one serialization pass
/// (§8.2.1 notes the combined query beats the sum of its parts).
pub struct CombinedPruner {
    pruners: Vec<Box<dyn RowPruner + Send>>,
}

impl std::fmt::Debug for CombinedPruner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.pruners.iter().map(|p| p.name()).collect();
        f.debug_struct("CombinedPruner")
            .field("pruners", &names)
            .finish()
    }
}

impl CombinedPruner {
    /// Combine sub-query pruners over one stream.
    pub fn new(pruners: Vec<Box<dyn RowPruner + Send>>) -> Self {
        assert!(!pruners.is_empty(), "need at least one sub-query");
        CombinedPruner { pruners }
    }
}

impl RowPruner for CombinedPruner {
    fn process_row(&mut self, row: &[u64]) -> Decision {
        // Every sub-pruner must see the row (stateful!); collect the bits
        // and OR the forward decisions, like the bit-select stage in §6.
        let mut any_forward = false;
        for p in &mut self.pruners {
            if p.process_row(row).is_forward() {
                any_forward = true;
            }
        }
        if any_forward {
            Decision::Forward
        } else {
            Decision::Prune
        }
    }

    fn reset(&mut self) {
        for p in &mut self.pruners {
            p.reset();
        }
    }

    fn name(&self) -> &'static str {
        "combined"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distinct::{DistinctPruner, EvictionPolicy};
    use crate::filter::{Atom, CmpOp, FilterPruner, Formula};
    use crate::groupby::{Extremum, GroupByPruner};
    use crate::resources::table2;

    fn distinct(fid_seed: u64) -> Box<dyn RowPruner + Send> {
        Box::new(DistinctPruner::new(64, 2, EvictionPolicy::Lru, fid_seed))
    }

    #[test]
    fn routes_by_fid() {
        let mut mq = MultiQueryPruner::new();
        mq.add(1, distinct(0), table2::distinct_lru(2, 64));
        mq.add(2, distinct(1), table2::distinct_lru(2, 64));
        // Same value on different fids: independent state.
        assert!(mq.process(1, &[42]).is_forward());
        assert!(mq.process(2, &[42]).is_forward());
        assert!(mq.process(1, &[42]).is_prune());
        assert!(mq.process(2, &[42]).is_prune());
    }

    #[test]
    fn unknown_fid_forwards() {
        let mut mq = MultiQueryPruner::new();
        mq.add(1, distinct(0), table2::distinct_lru(2, 64));
        assert!(mq.process(99, &[42]).is_forward());
        assert!(mq.process(99, &[42]).is_forward(), "no state for fid 99");
    }

    #[test]
    #[should_panic(expected = "duplicate fid")]
    fn duplicate_fid_panics() {
        let mut mq = MultiQueryPruner::new();
        mq.add(1, distinct(0), ResourceUsage::default());
        mq.add(1, distinct(1), ResourceUsage::default());
    }

    #[test]
    fn fit_check_accumulates() {
        let model = SwitchModel::tofino_like();
        let mut mq = MultiQueryPruner::new();
        // Figure 5's packed pair: a filter plus a group-by.
        let atoms = vec![Atom::cmp(0, CmpOp::Lt, 10)];
        let filter = FilterPruner::new(atoms, Formula::Atom(0)).unwrap();
        let fr = filter.resources();
        mq.add(1, Box::new(filter), fr);
        let gb = GroupByPruner::new(4096, 8, Extremum::Max, 0);
        let gr = gb.resources();
        mq.add(2, Box::new(gb), gr);
        assert!(mq.fits(&model), "filter + groupby should pack");
        assert_eq!(mq.len(), 2);
        let total = mq.total_resources();
        assert_eq!(total.alus, fr.alus + gr.alus);
    }

    #[test]
    fn block_routing_matches_per_row_processing() {
        let keys: Vec<u64> = (0..256).map(|i| i * 7 % 50).collect();
        let mut by_row = MultiQueryPruner::new();
        by_row.add(1, distinct(0), table2::distinct_lru(2, 64));
        let mut by_block = MultiQueryPruner::new();
        by_block.add(1, distinct(0), table2::distinct_lru(2, 64));

        let row_decisions: Vec<Decision> = keys.iter().map(|&k| by_row.process(1, &[k])).collect();
        let mut block_decisions = vec![Decision::Prune; keys.len()];
        by_block.process_block(1, &[&keys], &mut block_decisions);
        assert_eq!(row_decisions, block_decisions);

        // Unknown fid: whole block forwarded, no state touched.
        let mut out = vec![Decision::Prune; keys.len()];
        by_block.process_block(99, &[&keys], &mut out);
        assert!(out.iter().all(|d| d.is_forward()));
    }

    #[test]
    fn try_add_spills_on_budget_overflow() {
        let model = SwitchModel::tofino_like();
        let mut mq = MultiQueryPruner::new();
        assert!(
            mq.try_add(1, distinct(0), table2::distinct_lru(2, 64), &model)
                .is_ok(),
            "first query fits an empty switch"
        );
        // A flow pushing the packing past the TCAM limit is rejected and
        // its pruner handed back for the software spill path.
        let hog = ResourceUsage {
            tcam_entries: model.tcam_entries + 1,
            ..ResourceUsage::default()
        };
        let spilled = mq
            .try_add(2, distinct(1), hog, &model)
            .expect_err("over-budget flow must be refused");
        assert_eq!(mq.len(), 1, "refused flow must not be packed");
        let mut p = spilled;
        assert!(p.process_row(&[42]).is_forward(), "spilled pruner is live");
    }

    #[test]
    #[should_panic(expected = "duplicate fid")]
    fn try_add_panics_on_duplicate_fid() {
        let model = SwitchModel::tofino_like();
        let mut mq = MultiQueryPruner::new();
        assert!(mq
            .try_add(1, distinct(0), table2::distinct_lru(2, 64), &model)
            .is_ok());
        let _ = mq.try_add(1, distinct(1), table2::distinct_lru(2, 64), &model);
    }

    #[test]
    fn reset_all_clears_every_query() {
        let mut mq = MultiQueryPruner::new();
        mq.add(1, distinct(0), ResourceUsage::default());
        assert!(mq.process(1, &[5]).is_forward());
        assert!(mq.process(1, &[5]).is_prune());
        mq.reset_all();
        assert!(mq.process(1, &[5]).is_forward());
    }

    #[test]
    fn combined_forwards_if_any_needs_it() {
        // Filter(col0 < 10) + DISTINCT(col1): a row failing the filter but
        // carrying a novel distinct value must survive.
        let atoms = vec![Atom::cmp(0, CmpOp::Lt, 10)];
        let filter = FilterPruner::new(atoms, Formula::Atom(0)).unwrap();
        // DISTINCT reads row[0] through process_row, so give it a wrapper
        // stream where the key is in col 0 — here we reuse col0 for both.
        let mut c = CombinedPruner::new(vec![Box::new(filter), distinct(3)]);
        assert!(c.process_row(&[5]).is_forward()); // passes filter, novel
        assert!(c.process_row(&[5]).is_forward()); // duplicate but passes filter
        assert!(c.process_row(&[50]).is_forward()); // fails filter, novel
        assert!(c.process_row(&[50]).is_prune()); // fails filter, duplicate
        assert_eq!(c.name(), "combined");
        c.reset();
        assert!(c.process_row(&[50]).is_forward());
    }
}
