//! HAVING pruning with a Count-Min sketch (§4.3, Example 5; Figures 10f/11f).
//!
//! `SELECT key … GROUP BY key HAVING SUM(val) > c` (or COUNT) cannot be
//! decided from a single entry, so the switch folds values into a
//! **Count-Min sketch**. Count-Min was chosen over Count sketch precisely
//! because of its *one-sided* error: the estimate `ĝ(x)` always satisfies
//! `ĝ(x) ≥ f(x)`, so pruning only when `ĝ(x) ≤ c` can never lose an output
//! key — over-estimates merely forward some losers (pruning rate, not
//! correctness).
//!
//! The execution is two-pass (§4.3): pass 1 streams all entries through
//! the sketch and forwards only the single entry on which a key's estimate
//! first *crosses* `c` (so the master learns the candidate key set); pass 2
//! re-streams the data forwarding only candidate-key entries, from which
//! the master computes exact aggregates and discards false positives.

use crate::decision::{Decision, RowPruner};
use crate::distinct::{CacheMatrix, EvictionPolicy};
use crate::hash::HashFn;
use crate::resources::{table2, ResourceUsage};

/// Count-Min sketch with `d` rows of `w` counters.
///
/// Table 2 default: `w = 1024, d = 3`. Each row lives in its own register
/// array; update is one read-modify-write per row.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    d: usize,
    w: usize,
    counters: Vec<u64>,
    hashes: Vec<HashFn>,
}

impl CountMinSketch {
    /// Create a `d`-row, `w`-counter sketch.
    pub fn new(d: usize, w: usize, seed: u64) -> Self {
        assert!(d > 0 && w > 0);
        CountMinSketch {
            d,
            w,
            counters: vec![0; d * w],
            hashes: (0..d)
                .map(|i| HashFn::new(seed ^ ((i as u64) << 40)))
                .collect(),
        }
    }

    /// Add `delta` to `key`'s cells; returns `(estimate_before, estimate_after)`.
    ///
    /// The before/after pair is what the switch needs to detect a threshold
    /// crossing in-flight (a rolling minimum across the `d` stages, taken
    /// twice: once over the read values, once over the written values).
    pub fn update(&mut self, key: u64, delta: u64) -> (u64, u64) {
        let mut before = u64::MAX;
        let mut after = u64::MAX;
        for r in 0..self.d {
            let c = self.hashes[r].bucket(key, self.w);
            let cell = &mut self.counters[r * self.w + c];
            before = before.min(*cell);
            *cell = cell.saturating_add(delta);
            after = after.min(*cell);
        }
        (before, after)
    }

    /// One-sided estimate of the key's total: `estimate(k) ≥ true_sum(k)`.
    pub fn estimate(&self, key: u64) -> u64 {
        (0..self.d)
            .map(|r| self.counters[r * self.w + self.hashes[r].bucket(key, self.w)])
            .min()
            .unwrap_or(0)
    }

    /// Dimensions `(d, w)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.d, self.w)
    }

    /// The raw counter cells, row-major (`w` cells per row) — the
    /// sketch's entire soft state as a flat `u64` array, for shipping a
    /// shard-built sketch to the master over the wire protocol.
    pub fn counters(&self) -> &[u64] {
        &self.counters
    }

    /// Rebuild a sketch from shipped parts: dimensions, the seed its row
    /// hashes were derived from, and the raw counters. Inverse of
    /// [`CountMinSketch::counters`] for a sketch built with the same
    /// `seed` (hash derivation matches [`CountMinSketch::new`]).
    pub fn from_parts(d: usize, w: usize, seed: u64, counters: Vec<u64>) -> Self {
        assert!(d > 0 && w > 0);
        assert_eq!(counters.len(), d * w, "counter count must match dims");
        CountMinSketch {
            d,
            w,
            counters,
            hashes: (0..d)
                .map(|i| HashFn::new(seed ^ ((i as u64) << 40)))
                .collect(),
        }
    }

    /// Zero all counters.
    pub fn clear(&mut self) {
        self.counters.fill(0);
    }

    /// Merge another sketch into this one by cell-wise addition.
    ///
    /// Count-Min updates are per-cell additions, so the sum of two
    /// sketches over disjoint sub-streams is **exactly** the sketch of the
    /// concatenated stream — which makes per-shard sketches combinable at
    /// the master without losing the one-sided guarantee: the merged
    /// estimate still upper-bounds every key's *global* total. Both
    /// sketches must share dimensions and seeds.
    pub fn merge(&mut self, other: &CountMinSketch) {
        assert_eq!(
            (self.d, self.w, &self.hashes),
            (other.d, other.w, &other.hashes),
            "count-min merge requires identical dimensions and seeds"
        );
        for (c, o) in self.counters.iter_mut().zip(&other.counters) {
            *c = c.saturating_add(*o);
        }
    }

    /// Table 2 resources: `⌈d/A⌉` stages, `d` ALUs, `(d·w)×64b` SRAM.
    pub fn resources(&self, alus_per_stage: u32) -> ResourceUsage {
        table2::having(self.w as u64, self.d as u32, alus_per_stage)
    }
}

/// Two-pass HAVING pruner for `SUM(val) > c` / `COUNT(*) > c`.
#[derive(Debug, Clone)]
pub struct HavingPruner {
    sketch: CountMinSketch,
    threshold: u64,
}

impl HavingPruner {
    /// Create a pruner for `HAVING agg > threshold` with a `d×w` sketch.
    pub fn new(d: usize, w: usize, threshold: u64, seed: u64) -> Self {
        HavingPruner {
            sketch: CountMinSketch::new(d, w, seed),
            threshold,
        }
    }

    /// Wrap an already-built (e.g. wire-decoded and merged) sketch as a
    /// pruner — how the master reconstructs the pass-2 candidate rule
    /// from shard-shipped sketch state.
    pub fn from_sketch(sketch: CountMinSketch, threshold: u64) -> Self {
        HavingPruner { sketch, threshold }
    }

    /// Pass 1: fold the entry into the sketch. Forwards exactly the entry
    /// on which the key's estimate first exceeds the threshold — the
    /// candidate announcement. For COUNT semantics pass `value = 1`.
    pub fn pass_one(&mut self, key: u64, value: u64) -> Decision {
        let (before, after) = self.sketch.update(key, value);
        if before <= self.threshold && after > self.threshold {
            Decision::Forward
        } else {
            Decision::Prune
        }
    }

    /// Pass 2: forward only entries of candidate keys (estimate above the
    /// threshold), so the master can compute exact sums for them.
    pub fn pass_two(&self, key: u64) -> Decision {
        if self.sketch.estimate(key) > self.threshold {
            Decision::Forward
        } else {
            Decision::Prune
        }
    }

    /// Pass-1 block loop: fold a `(keys, vals)` block into the sketch,
    /// writing each entry's announcement decision into `out` —
    /// bit-identical to per-entry [`Self::pass_one`] calls.
    pub fn pass_one_block(&mut self, keys: &[u64], vals: &[u64], out: &mut [Decision]) {
        for ((d, &k), &v) in out.iter_mut().zip(keys).zip(vals) {
            *d = self.pass_one(k, v);
        }
    }

    /// Pass-2 block loop: candidate-key decisions for a key block —
    /// bit-identical to per-entry [`Self::pass_two`] calls.
    pub fn pass_two_block(&self, keys: &[u64], out: &mut [Decision]) {
        for (d, &k) in out.iter_mut().zip(keys) {
            *d = self.pass_two(k);
        }
    }

    /// The HAVING threshold `c`.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Access the sketch (for resource accounting / experiments).
    pub fn sketch(&self) -> &CountMinSketch {
        &self.sketch
    }

    /// Reset sketch state for a new run.
    pub fn clear(&mut self) {
        self.sketch.clear();
    }

    /// Merge another pruner's pass-1 sketch into this one (cell-wise
    /// [`CountMinSketch::merge`]). After merging every shard's sketch,
    /// [`Self::pass_two`] decides candidates against *global* estimates —
    /// the sharded flow's "sketch summation before pass 2". Thresholds
    /// must match: both pruners answer the same query.
    pub fn merge(&mut self, other: &HavingPruner) {
        assert_eq!(
            self.threshold, other.threshold,
            "merging sketches of different HAVING thresholds"
        );
        self.sketch.merge(&other.sketch);
    }
}

/// Single-pass `HAVING MAX(val) > c` / `MIN(val) < c` pruner (§4.3: "For
/// MAX and MIN, we simply maintain a counter with the current max and min
/// value. If it is satisfied, we proceed to our Distinct solution").
///
/// An entry witnesses its key's membership in the output iff its own value
/// satisfies the predicate, so the switch forwards the *first* satisfying
/// entry per key (the DISTINCT matrix deduplicates; its false negatives
/// merely forward a key twice). No second pass and no sketch needed — the
/// master's output is exactly the forwarded key set.
#[derive(Debug, Clone)]
pub struct HavingExtremumPruner {
    matrix: CacheMatrix,
    row_hash: HashFn,
    threshold: u64,
    /// True for `MAX(val) > c`, false for `MIN(val) < c`.
    max_variant: bool,
}

impl HavingExtremumPruner {
    /// `HAVING MAX(val) > threshold` with a `d×w` dedup matrix.
    pub fn new_max(d: usize, w: usize, threshold: u64, seed: u64) -> Self {
        HavingExtremumPruner {
            matrix: CacheMatrix::new(d, w, EvictionPolicy::Lru, seed),
            row_hash: HashFn::new(seed ^ 0x4a71_11c5),
            threshold,
            max_variant: true,
        }
    }

    /// `HAVING MIN(val) < threshold` with a `d×w` dedup matrix.
    pub fn new_min(d: usize, w: usize, threshold: u64, seed: u64) -> Self {
        HavingExtremumPruner {
            max_variant: false,
            ..Self::new_max(d, w, threshold, seed)
        }
    }

    /// Process one `(key, value)` entry.
    pub fn process(&mut self, key: u64, value: u64) -> Decision {
        let satisfied = if self.max_variant {
            value > self.threshold
        } else {
            value < self.threshold
        };
        if !satisfied {
            return Decision::Prune;
        }
        let row = self.row_hash.bucket(key, self.matrix.rows());
        self.matrix.process_in_row(row, key)
    }

    /// Reset matrix state.
    pub fn clear(&mut self) {
        self.matrix.clear();
    }
}

impl RowPruner for HavingExtremumPruner {
    fn process_row(&mut self, row: &[u64]) -> Decision {
        self.process(row[0], row[1])
    }

    fn reset(&mut self) {
        self.clear();
    }

    fn name(&self) -> &'static str {
        if self.max_variant {
            "having-max"
        } else {
            "having-min"
        }
    }
}

/// [`RowPruner`] adapter running pass 1 semantics on `(key, value)` rows —
/// the phase a packed multi-query switch executes inline (§6).
#[derive(Debug, Clone)]
pub struct HavingPassOne {
    inner: HavingPruner,
}

impl HavingPassOne {
    /// Wrap a fresh HAVING pruner.
    pub fn new(inner: HavingPruner) -> Self {
        HavingPassOne { inner }
    }

    /// Unwrap, e.g. to run pass 2 afterwards.
    pub fn into_inner(self) -> HavingPruner {
        self.inner
    }

    /// The typed phase transition: re-arm the populated sketch as the
    /// pass-2 pruner (the control-plane rule flip between streams).
    pub fn begin_pass_two(self) -> HavingPassTwo {
        HavingPassTwo { inner: self.inner }
    }

    /// Fold another shard's pass-1 state into this one (see
    /// [`HavingPruner::merge`]): the cross-shard combine step that must
    /// run before any shard starts pass 2.
    pub fn merge(&mut self, other: &HavingPassOne) {
        self.inner.merge(&other.inner);
    }
}

impl RowPruner for HavingPassOne {
    fn process_row(&mut self, row: &[u64]) -> Decision {
        self.inner.pass_one(row[0], row[1])
    }

    fn reset(&mut self) {
        self.inner.clear();
    }

    fn name(&self) -> &'static str {
        "having"
    }
}

/// [`RowPruner`] adapter running pass 2 semantics on `(key, value)` rows:
/// forwards entries of candidate keys out of a pass-1-populated sketch.
/// Constructed through [`HavingPassOne::begin_pass_two`], so the phase
/// order is enforced by the types.
#[derive(Debug, Clone)]
pub struct HavingPassTwo {
    inner: HavingPruner,
}

impl HavingPassTwo {
    /// Unwrap the underlying pruner (e.g. for resource accounting).
    pub fn into_inner(self) -> HavingPruner {
        self.inner
    }
}

impl RowPruner for HavingPassTwo {
    fn process_row(&mut self, row: &[u64]) -> Decision {
        self.inner.pass_two(row[0])
    }

    fn reset(&mut self) {
        self.inner.clear();
    }

    fn name(&self) -> &'static str {
        "having-pass2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::{HashMap, HashSet};

    #[test]
    fn count_min_never_underestimates() {
        let mut cm = CountMinSketch::new(3, 64, 0);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20_000 {
            let k = rng.gen_range(0..1_000u64);
            let v = rng.gen_range(0..100u64);
            cm.update(k, v);
            *truth.entry(k).or_insert(0) += v;
        }
        for (&k, &t) in &truth {
            assert!(cm.estimate(k) >= t, "underestimate for key {k}");
        }
    }

    #[test]
    fn count_min_exact_when_no_collisions() {
        let mut cm = CountMinSketch::new(3, 4096, 0);
        for k in 0..10u64 {
            cm.update(k, k + 1);
        }
        for k in 0..10u64 {
            assert_eq!(cm.estimate(k), k + 1, "sparse sketch should be exact");
        }
    }

    #[test]
    fn update_reports_before_and_after() {
        let mut cm = CountMinSketch::new(3, 1024, 0);
        let (b0, a0) = cm.update(7, 5);
        assert_eq!(b0, 0);
        assert_eq!(a0, 5);
        let (b1, a1) = cm.update(7, 10);
        assert_eq!(b1, 5);
        assert_eq!(a1, 15);
    }

    #[test]
    fn having_never_loses_output_key() {
        let mut rng = StdRng::seed_from_u64(2);
        // Skewed sums: a few heavy keys cross the threshold.
        let entries: Vec<(u64, u64)> = (0..50_000)
            .map(|_| {
                let k = rng.gen_range(0..200u64);
                let v = if k < 5 {
                    rng.gen_range(50..150)
                } else {
                    rng.gen_range(0..3)
                };
                (k, v)
            })
            .collect();
        let threshold = 10_000u64;
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &(k, v) in &entries {
            *truth.entry(k).or_insert(0) += v;
        }
        let output_keys: HashSet<u64> = truth
            .iter()
            .filter(|(_, &s)| s > threshold)
            .map(|(&k, _)| k)
            .collect();
        assert!(!output_keys.is_empty(), "test needs some output keys");

        let mut p = HavingPruner::new(3, 512, threshold, 0);
        let mut candidates = HashSet::new();
        for &(k, v) in &entries {
            if p.pass_one(k, v).is_forward() {
                candidates.insert(k);
            }
        }
        // Every true output key must be announced in pass 1 …
        for k in &output_keys {
            assert!(candidates.contains(k), "output key {k} never announced");
        }
        // … and fully re-streamed in pass 2.
        let mut master: HashMap<u64, u64> = HashMap::new();
        for &(k, v) in &entries {
            if p.pass_two(k).is_forward() {
                *master.entry(k).or_insert(0) += v;
            }
        }
        let final_keys: HashSet<u64> = master
            .iter()
            .filter(|(_, &s)| s > threshold)
            .map(|(&k, _)| k)
            .collect();
        assert_eq!(final_keys, output_keys, "master output differs from truth");
    }

    #[test]
    fn pass_one_announces_each_candidate_once() {
        let mut p = HavingPruner::new(3, 1024, 100, 0);
        let mut announcements = 0;
        for _ in 0..50 {
            if p.pass_one(42, 10).is_forward() {
                announcements += 1;
            }
        }
        assert_eq!(announcements, 1, "crossing happens exactly once");
    }

    #[test]
    fn small_sums_fully_pruned() {
        let mut p = HavingPruner::new(3, 1024, 1_000_000, 0);
        for k in 0..100u64 {
            assert!(p.pass_one(k, 5).is_prune());
        }
        for k in 0..100u64 {
            assert!(p.pass_two(k).is_prune());
        }
    }

    #[test]
    fn tiny_sketch_overestimates_cost_pruning_not_correctness() {
        // Cram 1000 keys into 8 counters: collisions galore. Output keys
        // must still survive; extra keys may leak through.
        let mut rng = StdRng::seed_from_u64(3);
        let entries: Vec<(u64, u64)> = (0..20_000)
            .map(|_| (rng.gen_range(0..1000u64), rng.gen_range(0..20u64)))
            .collect();
        let threshold = 2_000u64;
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &(k, v) in &entries {
            *truth.entry(k).or_insert(0) += v;
        }
        let mut p = HavingPruner::new(2, 8, threshold, 0);
        for &(k, v) in &entries {
            p.pass_one(k, v);
        }
        for (&k, &s) in &truth {
            if s > threshold {
                assert!(
                    p.pass_two(k).is_forward(),
                    "collision caused a lost output key"
                );
            }
        }
    }

    #[test]
    fn block_loops_match_per_entry_decisions() {
        let mut rng = StdRng::seed_from_u64(21);
        let keys: Vec<u64> = (0..6_000).map(|_| rng.gen_range(0..150u64)).collect();
        let vals: Vec<u64> = (0..6_000).map(|_| rng.gen_range(0..50u64)).collect();
        let threshold = 700u64;
        let mut a = HavingPruner::new(3, 256, threshold, 4);
        let mut b = a.clone();
        let expected1: Vec<Decision> = keys
            .iter()
            .zip(&vals)
            .map(|(&k, &v)| a.pass_one(k, v))
            .collect();
        let mut got1 = vec![Decision::Prune; keys.len()];
        b.pass_one_block(&keys, &vals, &mut got1);
        assert_eq!(got1, expected1, "pass-1 block loop diverged");
        let expected2: Vec<Decision> = keys.iter().map(|&k| a.pass_two(k)).collect();
        let mut got2 = vec![Decision::Prune; keys.len()];
        b.pass_two_block(&keys, &mut got2);
        assert_eq!(got2, expected2, "pass-2 block loop diverged");
    }

    #[test]
    fn merged_shard_sketches_equal_one_global_sketch() {
        // Split a stream across three "shards", sketch each independently,
        // merge — every cell (hence every estimate) must equal the sketch
        // that saw the whole stream.
        let mut rng = StdRng::seed_from_u64(51);
        let entries: Vec<(u64, u64)> = (0..9_000)
            .map(|_| (rng.gen_range(0..400u64), rng.gen_range(0..30u64)))
            .collect();
        let mut global = CountMinSketch::new(3, 128, 7);
        let mut shards: Vec<CountMinSketch> =
            (0..3).map(|_| CountMinSketch::new(3, 128, 7)).collect();
        for (i, &(k, v)) in entries.iter().enumerate() {
            global.update(k, v);
            shards[i % 3].update(k, v);
        }
        let (first, rest) = shards.split_first_mut().unwrap();
        for s in rest {
            first.merge(s);
        }
        for k in 0..400u64 {
            assert_eq!(
                first.estimate(k),
                global.estimate(k),
                "merged estimate diverged for key {k}"
            );
        }
    }

    #[test]
    fn sharded_pass_one_merge_never_loses_an_output_key() {
        // Keys whose global sum crosses the threshold only across shard
        // boundaries: no shard-local sketch would announce them, but the
        // merged sketch must keep them as pass-2 candidates.
        let threshold = 1_000u64;
        let mut shards: Vec<HavingPassOne> = (0..4)
            .map(|_| HavingPassOne::new(HavingPruner::new(3, 256, threshold, 3)))
            .collect();
        for shard in &mut shards {
            // 300 per shard: below the threshold everywhere locally …
            shard.process_row(&[42, 300]);
        }
        let (first, rest) = shards.split_first_mut().unwrap();
        for s in rest {
            assert!(
                s.inner.pass_two(42).is_prune(),
                "shard-local estimate must stay below the threshold"
            );
            first.merge(s);
        }
        // … but 1200 globally: the merged sketch must forward it.
        assert!(
            first.inner.pass_two(42).is_forward(),
            "merged sketch lost a cross-shard output key"
        );
    }

    #[test]
    #[should_panic(expected = "identical dimensions")]
    fn sketch_merge_rejects_mismatched_dims() {
        let mut a = CountMinSketch::new(3, 64, 0);
        let b = CountMinSketch::new(3, 128, 0);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "different HAVING thresholds")]
    fn pruner_merge_rejects_mismatched_thresholds() {
        let mut a = HavingPruner::new(3, 64, 10, 0);
        let b = HavingPruner::new(3, 64, 20, 0);
        a.merge(&b);
    }

    #[test]
    fn clear_resets_sketch() {
        let mut p = HavingPruner::new(3, 64, 10, 0);
        p.pass_one(1, 100);
        assert!(p.pass_two(1).is_forward());
        p.clear();
        assert!(p.pass_two(1).is_prune());
    }

    #[test]
    fn resources_match_table2() {
        let cm = CountMinSketch::new(3, 1024, 0);
        let r = cm.resources(10);
        assert_eq!(r.stages, 1);
        assert_eq!(r.alus, 3);
        assert_eq!(r.sram_bits, 3 * 1024 * 64);
    }

    #[test]
    fn row_pruner_adapter() {
        let mut p = HavingPassOne::new(HavingPruner::new(3, 64, 10, 0));
        assert_eq!(p.name(), "having");
        assert!(p.process_row(&[5, 11]).is_forward(), "immediate crossing");
        assert!(p.process_row(&[5, 1]).is_prune());
        p.reset();
        assert!(p.process_row(&[5, 11]).is_forward());
    }

    #[test]
    fn pass_two_adapter_continues_from_pass_one_state() {
        let mut p1 = HavingPassOne::new(HavingPruner::new(3, 64, 10, 0));
        p1.process_row(&[5, 11]); // key 5 crosses the threshold
        p1.process_row(&[6, 3]); // key 6 stays below
        let mut p2 = p1.begin_pass_two();
        assert_eq!(p2.name(), "having-pass2");
        assert!(p2.process_row(&[5, 11]).is_forward(), "candidate key");
        assert!(p2.process_row(&[6, 3]).is_prune(), "loser key");
        p2.reset();
        assert!(
            p2.process_row(&[5, 11]).is_prune(),
            "reset clears the sketch"
        );
        let inner = p2.into_inner();
        assert_eq!(inner.sketch().estimate(5), 0);
    }

    #[test]
    fn having_max_exact_single_pass() {
        let mut rng = StdRng::seed_from_u64(41);
        let entries: Vec<(u64, u64)> = (0..30_000)
            .map(|_| (rng.gen_range(0..300u64), rng.gen_range(0..10_000u64)))
            .collect();
        let threshold = 9_900u64;
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &(k, v) in &entries {
            let e = truth.entry(k).or_insert(0);
            *e = (*e).max(v);
        }
        let winners: HashSet<u64> = truth
            .iter()
            .filter(|(_, &m)| m > threshold)
            .map(|(&k, _)| k)
            .collect();
        assert!(!winners.is_empty() && winners.len() < 300);
        let mut p = HavingExtremumPruner::new_max(64, 2, threshold, 7);
        let mut master: HashSet<u64> = HashSet::new();
        let mut forwarded = 0u64;
        for &(k, v) in &entries {
            if p.process(k, v).is_forward() {
                master.insert(k);
                forwarded += 1;
            }
        }
        assert_eq!(master, winners, "HAVING MAX output diverged");
        // Dedup should keep forwarding close to one entry per winner.
        assert!(
            forwarded < winners.len() as u64 * 4,
            "dedup ineffective: {forwarded} forwards for {} winners",
            winners.len()
        );
    }

    #[test]
    fn having_min_exact_single_pass() {
        let mut rng = StdRng::seed_from_u64(43);
        let entries: Vec<(u64, u64)> = (0..20_000)
            .map(|_| (rng.gen_range(0..200u64), rng.gen_range(0..10_000u64)))
            .collect();
        let threshold = 40u64;
        let winners: HashSet<u64> = {
            let mut mins: HashMap<u64, u64> = HashMap::new();
            for &(k, v) in &entries {
                let e = mins.entry(k).or_insert(u64::MAX);
                *e = (*e).min(v);
            }
            mins.into_iter()
                .filter(|&(_, m)| m < threshold)
                .map(|(k, _)| k)
                .collect()
        };
        let mut p = HavingExtremumPruner::new_min(64, 2, threshold, 9);
        let mut master: HashSet<u64> = HashSet::new();
        for &(k, v) in &entries {
            if p.process(k, v).is_forward() {
                master.insert(k);
            }
        }
        assert_eq!(master, winners, "HAVING MIN output diverged");
    }

    #[test]
    fn having_extremum_reset_and_names() {
        let mut p = HavingExtremumPruner::new_max(8, 2, 10, 0);
        assert_eq!(p.name(), "having-max");
        assert!(p.process_row(&[1, 11]).is_forward());
        assert!(
            p.process_row(&[1, 12]).is_prune(),
            "dedup on second witness"
        );
        p.reset();
        assert!(p.process_row(&[1, 11]).is_forward());
        assert_eq!(
            HavingExtremumPruner::new_min(8, 2, 10, 0).name(),
            "having-min"
        );
    }
}
