//! The prune/forward decision type and the switch-facing pruner trait.

/// The verdict a pruning algorithm gives for a single entry.
///
/// `Prune` means the entry is *guaranteed not to affect the query output*
/// (or, for probabilistic algorithms, affects it with probability ≤ δ) and
/// the switch drops it. `Forward` means the entry continues to the master.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decision {
    /// Drop the entry at the switch; it cannot change the query result.
    Prune,
    /// Send the entry on to the master for final processing.
    Forward,
}

impl Decision {
    /// `true` if the entry is dropped.
    #[inline]
    pub fn is_prune(self) -> bool {
        matches!(self, Decision::Prune)
    }

    /// `true` if the entry survives to the master.
    #[inline]
    pub fn is_forward(self) -> bool {
        matches!(self, Decision::Forward)
    }
}

/// Running counters for pruning effectiveness, used by every experiment.
///
/// The paper's figures plot the *unpruned fraction* (note the log axes in
/// Figures 10 and 11): `10^-3` means 99.9% of entries were pruned.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Total entries processed by the switch.
    pub processed: u64,
    /// Entries dropped by the pruning algorithm.
    pub pruned: u64,
}

impl PruneStats {
    /// Record one decision.
    #[inline]
    pub fn record(&mut self, d: Decision) {
        self.processed += 1;
        if d.is_prune() {
            self.pruned += 1;
        }
    }

    /// Entries that survived to the master.
    #[inline]
    pub fn forwarded(&self) -> u64 {
        self.processed - self.pruned
    }

    /// Fraction of entries pruned, in `[0, 1]`. Zero if nothing processed.
    pub fn pruned_fraction(&self) -> f64 {
        if self.processed == 0 {
            0.0
        } else {
            self.pruned as f64 / self.processed as f64
        }
    }

    /// Fraction of entries that survived, in `[0, 1]`.
    ///
    /// This is the y-axis of Figures 10 and 11.
    pub fn unpruned_fraction(&self) -> f64 {
        if self.processed == 0 {
            0.0
        } else {
            self.forwarded() as f64 / self.processed as f64
        }
    }

    /// Merge counters from another stats object (e.g. per-worker stats).
    pub fn merge(&mut self, other: PruneStats) {
        self.processed += other.processed;
        self.pruned += other.pruned;
    }

    /// Record a whole block of decisions at once (the bulk counterpart of
    /// [`PruneStats::record`], used by the block-streaming hot path).
    #[inline]
    pub fn record_block(&mut self, decisions: &[Decision]) {
        self.processed += decisions.len() as u64;
        self.pruned += decisions.iter().filter(|d| d.is_prune()).count() as u64;
    }
}

/// A pruning algorithm viewed from the switch dataplane.
///
/// The CWorker serializes each entry into a packet whose switch-visible
/// payload is a short vector of 64-bit values (key fingerprints, numeric
/// columns, projection inputs — see Figure 4 of the paper). A `RowPruner`
/// consumes that row and returns a [`Decision`].
///
/// Implementations are stateful: the order of `process_row` calls is the
/// stream order the switch observes.
pub trait RowPruner {
    /// Process one entry's switch-visible values and decide its fate.
    fn process_row(&mut self, row: &[u64]) -> Decision;

    /// Process a **column-major block** of entries: `cols[c][i]` is entry
    /// `i`'s value for metadata column `c`, and the decision for entry `i`
    /// is written to `out[i]`. Every column slice must have length
    /// `out.len()`.
    ///
    /// Decisions must be **bitwise identical** to feeding the same entries
    /// through [`RowPruner::process_row`] one at a time, in order — blocks
    /// are a data-layout optimization (one virtual call and one set of
    /// hoisted loads per block instead of per row), not a semantic change.
    /// The default implementation gathers each row into a scratch buffer
    /// and loops `process_row`; stateful pruners override it with loops
    /// that read the column lanes directly.
    ///
    /// # Examples
    ///
    /// ```
    /// use cheetah_core::decision::{Decision, RowPruner};
    /// use cheetah_core::distinct::{DistinctPruner, EvictionPolicy};
    ///
    /// let mut pruner = DistinctPruner::new(16, 2, EvictionPolicy::Lru, 0);
    /// let keys = [5u64, 5, 9]; // one column lane, three entries
    /// let mut out = [Decision::Prune; 3];
    /// pruner.process_block(&[&keys], &mut out);
    /// assert_eq!(
    ///     out,
    ///     [Decision::Forward, Decision::Prune, Decision::Forward],
    ///     "first occurrences forward, the duplicate 5 is pruned"
    /// );
    /// ```
    fn process_block(&mut self, cols: &[&[u64]], out: &mut [Decision]) {
        debug_assert!(cols.iter().all(|c| c.len() == out.len()));
        let mut row = Vec::with_capacity(cols.len());
        for (i, d) in out.iter_mut().enumerate() {
            row.clear();
            row.extend(cols.iter().map(|c| c[i]));
            *d = self.process_row(&row);
        }
    }

    /// Clear all switch state, as when the control plane reinstalls rules
    /// for a fresh query run.
    fn reset(&mut self);

    /// Human-readable algorithm name (used by experiment harnesses).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_predicates() {
        assert!(Decision::Prune.is_prune());
        assert!(!Decision::Prune.is_forward());
        assert!(Decision::Forward.is_forward());
        assert!(!Decision::Forward.is_prune());
    }

    #[test]
    fn stats_accumulate() {
        let mut s = PruneStats::default();
        s.record(Decision::Prune);
        s.record(Decision::Forward);
        s.record(Decision::Prune);
        assert_eq!(s.processed, 3);
        assert_eq!(s.pruned, 2);
        assert_eq!(s.forwarded(), 1);
        assert!((s.pruned_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.unpruned_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stats_empty_is_zero() {
        let s = PruneStats::default();
        assert_eq!(s.pruned_fraction(), 0.0);
        assert_eq!(s.unpruned_fraction(), 0.0);
    }

    #[test]
    fn stats_record_block() {
        let mut s = PruneStats::default();
        s.record_block(&[Decision::Prune, Decision::Forward, Decision::Prune]);
        s.record_block(&[]);
        assert_eq!(s.processed, 3);
        assert_eq!(s.pruned, 2);
    }

    /// Forward even values, prune odd ones (sum across columns).
    struct ParityPruner;

    impl RowPruner for ParityPruner {
        fn process_row(&mut self, row: &[u64]) -> Decision {
            if row.iter().sum::<u64>() % 2 == 0 {
                Decision::Forward
            } else {
                Decision::Prune
            }
        }

        fn reset(&mut self) {}

        fn name(&self) -> &'static str {
            "parity"
        }
    }

    #[test]
    fn default_process_block_gathers_rows_in_order() {
        let a = [1u64, 2, 3, 4];
        let b = [1u64, 1, 1, 1];
        let cols: Vec<&[u64]> = vec![&a, &b];
        let mut out = [Decision::Prune; 4];
        ParityPruner.process_block(&cols, &mut out);
        let expected: Vec<Decision> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| ParityPruner.process_row(&[x, y]))
            .collect();
        assert_eq!(out.to_vec(), expected);
    }

    #[test]
    fn stats_merge() {
        let mut a = PruneStats {
            processed: 10,
            pruned: 4,
        };
        let b = PruneStats {
            processed: 5,
            pruned: 5,
        };
        a.merge(b);
        assert_eq!(a.processed, 15);
        assert_eq!(a.pruned, 9);
    }
}
