//! The prune/forward decision type and the switch-facing pruner trait.

/// The verdict a pruning algorithm gives for a single entry.
///
/// `Prune` means the entry is *guaranteed not to affect the query output*
/// (or, for probabilistic algorithms, affects it with probability ≤ δ) and
/// the switch drops it. `Forward` means the entry continues to the master.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decision {
    /// Drop the entry at the switch; it cannot change the query result.
    Prune,
    /// Send the entry on to the master for final processing.
    Forward,
}

impl Decision {
    /// `true` if the entry is dropped.
    #[inline]
    pub fn is_prune(self) -> bool {
        matches!(self, Decision::Prune)
    }

    /// `true` if the entry survives to the master.
    #[inline]
    pub fn is_forward(self) -> bool {
        matches!(self, Decision::Forward)
    }
}

/// Running counters for pruning effectiveness, used by every experiment.
///
/// The paper's figures plot the *unpruned fraction* (note the log axes in
/// Figures 10 and 11): `10^-3` means 99.9% of entries were pruned.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Total entries processed by the switch.
    pub processed: u64,
    /// Entries dropped by the pruning algorithm.
    pub pruned: u64,
}

impl PruneStats {
    /// Record one decision.
    #[inline]
    pub fn record(&mut self, d: Decision) {
        self.processed += 1;
        if d.is_prune() {
            self.pruned += 1;
        }
    }

    /// Entries that survived to the master.
    #[inline]
    pub fn forwarded(&self) -> u64 {
        self.processed - self.pruned
    }

    /// Fraction of entries pruned, in `[0, 1]`. Zero if nothing processed.
    pub fn pruned_fraction(&self) -> f64 {
        if self.processed == 0 {
            0.0
        } else {
            self.pruned as f64 / self.processed as f64
        }
    }

    /// Fraction of entries that survived, in `[0, 1]`.
    ///
    /// This is the y-axis of Figures 10 and 11.
    pub fn unpruned_fraction(&self) -> f64 {
        if self.processed == 0 {
            0.0
        } else {
            self.forwarded() as f64 / self.processed as f64
        }
    }

    /// Merge counters from another stats object (e.g. per-worker stats).
    pub fn merge(&mut self, other: PruneStats) {
        self.processed += other.processed;
        self.pruned += other.pruned;
    }
}

/// A pruning algorithm viewed from the switch dataplane.
///
/// The CWorker serializes each entry into a packet whose switch-visible
/// payload is a short vector of 64-bit values (key fingerprints, numeric
/// columns, projection inputs — see Figure 4 of the paper). A `RowPruner`
/// consumes that row and returns a [`Decision`].
///
/// Implementations are stateful: the order of `process_row` calls is the
/// stream order the switch observes.
pub trait RowPruner {
    /// Process one entry's switch-visible values and decide its fate.
    fn process_row(&mut self, row: &[u64]) -> Decision;

    /// Clear all switch state, as when the control plane reinstalls rules
    /// for a fresh query run.
    fn reset(&mut self);

    /// Human-readable algorithm name (used by experiment harnesses).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_predicates() {
        assert!(Decision::Prune.is_prune());
        assert!(!Decision::Prune.is_forward());
        assert!(Decision::Forward.is_forward());
        assert!(!Decision::Forward.is_prune());
    }

    #[test]
    fn stats_accumulate() {
        let mut s = PruneStats::default();
        s.record(Decision::Prune);
        s.record(Decision::Forward);
        s.record(Decision::Prune);
        assert_eq!(s.processed, 3);
        assert_eq!(s.pruned, 2);
        assert_eq!(s.forwarded(), 1);
        assert!((s.pruned_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.unpruned_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stats_empty_is_zero() {
        let s = PruneStats::default();
        assert_eq!(s.pruned_fraction(), 0.0);
        assert_eq!(s.unpruned_fraction(), 0.0);
    }

    #[test]
    fn stats_merge() {
        let mut a = PruneStats {
            processed: 10,
            pruned: 4,
        };
        let b = PruneStats {
            processed: 5,
            pruned: 5,
        };
        a.merge(b);
        assert_eq!(a.processed, 15);
        assert_eq!(a.pruned, 9);
    }
}
