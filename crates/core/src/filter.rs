//! Filtering-query pruning and predicate decomposition (§4.1, Example 1).
//!
//! A `WHERE` expression may mix predicates the switch can evaluate (integer
//! comparisons) with ones it cannot (string `LIKE`, arbitrary arithmetic).
//! Cheetah's query compiler takes the *monotone* Boolean formula over
//! predicate variables, replaces every unsupported variable with a
//! tautology (`T ∨ F` ≡ `True`) and simplifies. Because the formula is
//! monotone, the substituted formula is implied by no-stronger inputs:
//! if the switch formula evaluates to `false`, the original is certainly
//! `false`, so pruning on it is safe; the master re-checks the full
//! predicate on survivors.
//!
//! On the switch, the supported predicates are evaluated into a bit vector
//! and the formula is applied with a single **truth-table** lookup
//! ([`TruthTable`]) — exactly the match-action encoding §4.1 describes.
//!
//! Alternatively the CWorker can pre-compute an unsupported predicate and
//! ship its result as an extra 0/1 packet value ([`Atom::precomputed`]),
//! making it switch-checkable after all.

use crate::decision::{Decision, RowPruner};
use crate::resources::{table2, ResourceUsage};

/// Comparison operators available to switch ALUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Evaluate `lhs op rhs`.
    #[inline]
    pub fn eval(self, lhs: u64, rhs: u64) -> bool {
        match self {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
        }
    }

    /// The complementary operator (`¬(a < b) ≡ a ≥ b`).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
        }
    }
}

/// An atomic predicate `row[col] op constant`.
///
/// `supported` records whether the switch can evaluate it; unsupported
/// atoms (standing in for `LIKE`, UDFs, non-power-of-two arithmetic) are
/// still evaluable here so tests can compute ground truth, but the
/// decomposition replaces them with `True`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Atom {
    /// Index of the packet value the predicate reads.
    pub col: usize,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand constant (installed by the control plane).
    pub constant: u64,
    /// Whether the switch can evaluate this atom.
    pub supported: bool,
}

impl Atom {
    /// A switch-supported comparison atom.
    pub fn cmp(col: usize, op: CmpOp, constant: u64) -> Self {
        Atom {
            col,
            op,
            constant,
            supported: true,
        }
    }

    /// A switch-unsupported atom (e.g. a string `LIKE`).
    pub fn unsupported(col: usize, op: CmpOp, constant: u64) -> Self {
        Atom {
            col,
            op,
            constant,
            supported: false,
        }
    }

    /// An atom whose truth value the CWorker pre-computed into packet
    /// value `col` (1 = true): a plain bit check, always supported.
    pub fn precomputed(col: usize) -> Self {
        Atom {
            col,
            op: CmpOp::Eq,
            constant: 1,
            supported: true,
        }
    }

    /// Evaluate against a row.
    #[inline]
    pub fn eval(&self, row: &[u64]) -> bool {
        self.op.eval(row[self.col], self.constant)
    }
}

/// A Boolean formula over atoms in negation normal form: negations appear
/// only as [`Formula::NotAtom`] literals, keeping the connective structure
/// monotone as §4.1 requires for tautology substitution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// Positive literal: atom `i` holds.
    Atom(usize),
    /// Negative literal: atom `i` does not hold.
    NotAtom(usize),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
    /// Constant true.
    True,
    /// Constant false.
    False,
}

impl Formula {
    /// Evaluate given a truth assignment for the atoms.
    pub fn eval_with(&self, truth: &dyn Fn(usize) -> bool) -> bool {
        match self {
            Formula::Atom(i) => truth(*i),
            Formula::NotAtom(i) => !truth(*i),
            Formula::And(fs) => fs.iter().all(|f| f.eval_with(truth)),
            Formula::Or(fs) => fs.iter().any(|f| f.eval_with(truth)),
            Formula::True => true,
            Formula::False => false,
        }
    }

    /// Evaluate the full formula (including unsupported atoms) on a row —
    /// what the master does on survivors.
    pub fn eval(&self, atoms: &[Atom], row: &[u64]) -> bool {
        self.eval_with(&|i| atoms[i].eval(row))
    }

    /// §4.1 decomposition: replace every literal on an unsupported atom
    /// with `True` (the tautology `T ∨ F`) and simplify. The result is the
    /// switch-evaluable relaxation: it is implied by the original formula,
    /// so `switch says false ⇒ original is false`.
    pub fn decompose(&self, atoms: &[Atom]) -> Formula {
        match self {
            Formula::Atom(i) | Formula::NotAtom(i) if !atoms[*i].supported => Formula::True,
            Formula::Atom(i) => Formula::Atom(*i),
            Formula::NotAtom(i) => Formula::NotAtom(*i),
            Formula::And(fs) => {
                let mut out = Vec::with_capacity(fs.len());
                for f in fs {
                    match f.decompose(atoms) {
                        Formula::True => {}
                        Formula::False => return Formula::False,
                        g => out.push(g),
                    }
                }
                match out.len() {
                    0 => Formula::True,
                    1 => out.pop().expect("len checked"),
                    _ => Formula::And(out),
                }
            }
            Formula::Or(fs) => {
                let mut out = Vec::with_capacity(fs.len());
                for f in fs {
                    match f.decompose(atoms) {
                        Formula::False => {}
                        Formula::True => return Formula::True,
                        g => out.push(g),
                    }
                }
                match out.len() {
                    0 => Formula::False,
                    1 => out.pop().expect("len checked"),
                    _ => Formula::Or(out),
                }
            }
            Formula::True => Formula::True,
            Formula::False => Formula::False,
        }
    }

    /// Atom ids referenced by this formula, ascending and deduplicated.
    pub fn atom_ids(&self) -> Vec<usize> {
        let mut ids = Vec::new();
        self.collect_atoms(&mut ids);
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    fn collect_atoms(&self, out: &mut Vec<usize>) {
        match self {
            Formula::Atom(i) | Formula::NotAtom(i) => out.push(*i),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().for_each(|f| f.collect_atoms(out)),
            Formula::True | Formula::False => {}
        }
    }
}

/// The switch encoding of a decomposed formula: evaluate each supported
/// atom to a bit, concatenate, and look the word up in a `2^k` truth table
/// installed by the control plane (§4.1's "bit vector … truth table").
#[derive(Debug, Clone)]
pub struct TruthTable {
    /// Atom ids in bit order (bit `j` = atom `atom_ids[j]`).
    atom_ids: Vec<usize>,
    /// Packed table: bit `v` = formula value under assignment `v`.
    table: Vec<u64>,
}

/// Compiling a formula with too many distinct atoms for the match-action
/// table (the switch looks the bit vector up in one table; we cap at 2¹⁶
/// entries as a typical exact-match table size).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TooManyAtoms(pub usize);

impl std::fmt::Display for TooManyAtoms {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "formula uses {} atoms; truth table caps at 16", self.0)
    }
}

impl std::error::Error for TooManyAtoms {}

impl TruthTable {
    /// Enumerate all `2^k` assignments of the formula's atoms.
    pub fn compile(formula: &Formula) -> Result<TruthTable, TooManyAtoms> {
        let atom_ids = formula.atom_ids();
        let k = atom_ids.len();
        if k > 16 {
            return Err(TooManyAtoms(k));
        }
        let entries = 1usize << k;
        let mut table = vec![0u64; entries.div_ceil(64)];
        for v in 0..entries {
            let truth = |atom: usize| {
                let j = atom_ids
                    .iter()
                    .position(|&a| a == atom)
                    .expect("atom_ids covers formula");
                (v >> j) & 1 == 1
            };
            if formula.eval_with(&truth) {
                table[v / 64] |= 1u64 << (v % 64);
            }
        }
        Ok(TruthTable { atom_ids, table })
    }

    /// Evaluate on a row by computing the atom bit-vector and indexing.
    pub fn eval(&self, atoms: &[Atom], row: &[u64]) -> bool {
        let mut v = 0usize;
        for (j, &id) in self.atom_ids.iter().enumerate() {
            if atoms[id].eval(row) {
                v |= 1 << j;
            }
        }
        self.table[v / 64] & (1u64 << (v % 64)) != 0
    }

    /// Evaluate entry `i` of a column-major block (`cols[atom.col][i]`)
    /// without materializing the row — the block-streaming fast path.
    #[inline]
    pub fn eval_entry(&self, atoms: &[Atom], cols: &[&[u64]], i: usize) -> bool {
        let mut v = 0usize;
        for (j, &id) in self.atom_ids.iter().enumerate() {
            let a = &atoms[id];
            if a.op.eval(cols[a.col][i], a.constant) {
                v |= 1 << j;
            }
        }
        self.table[v / 64] & (1u64 << (v % 64)) != 0
    }

    /// Number of atoms (bit-vector width).
    pub fn arity(&self) -> usize {
        self.atom_ids.len()
    }
}

/// The complete filtering pruner: decomposed formula compiled to a truth
/// table; prunes rows the switch-evaluable relaxation rejects.
#[derive(Debug, Clone)]
pub struct FilterPruner {
    atoms: Vec<Atom>,
    /// The original (full) formula — what the master re-checks.
    original: Formula,
    /// The switch relaxation.
    switch_formula: Formula,
    table: TruthTable,
}

impl FilterPruner {
    /// Build from the atom list and the full `WHERE` formula.
    pub fn new(atoms: Vec<Atom>, formula: Formula) -> Result<Self, TooManyAtoms> {
        let switch_formula = formula.decompose(&atoms);
        let table = TruthTable::compile(&switch_formula)?;
        Ok(FilterPruner {
            atoms,
            original: formula,
            switch_formula,
            table,
        })
    }

    /// Switch decision for one row.
    pub fn process(&self, row: &[u64]) -> Decision {
        if self.table.eval(&self.atoms, row) {
            Decision::Forward
        } else {
            Decision::Prune
        }
    }

    /// The master's residual check (the full original predicate).
    pub fn master_accepts(&self, row: &[u64]) -> bool {
        self.original.eval(&self.atoms, row)
    }

    /// The decomposed switch formula (for inspection).
    pub fn switch_formula(&self) -> &Formula {
        &self.switch_formula
    }

    /// Resources: one ALU and one 32-bit constant register per supported
    /// atom (Appendix A.2.2), plus the truth-table match entries.
    pub fn resources(&self) -> ResourceUsage {
        let preds = self.table.arity() as u32;
        let base = table2::filter(preds.max(1));
        ResourceUsage {
            sram_bits: base.sram_bits + (1u64 << self.table.arity()),
            ..base
        }
    }
}

impl RowPruner for FilterPruner {
    fn process_row(&mut self, row: &[u64]) -> Decision {
        self.process(row)
    }

    fn process_block(&mut self, cols: &[&[u64]], out: &mut [Decision]) {
        for (i, d) in out.iter_mut().enumerate() {
            *d = if self.table.eval_entry(&self.atoms, cols, i) {
                Decision::Forward
            } else {
                Decision::Prune
            };
        }
    }

    fn reset(&mut self) {}

    fn name(&self) -> &'static str {
        "filter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The paper's example: (taste > 5) OR (texture > 4 AND name LIKE e%s),
    /// with the LIKE unsupported. Columns: 0 = taste, 1 = texture,
    /// 2 = a stand-in numeric encoding the LIKE would inspect.
    fn paper_example() -> (Vec<Atom>, Formula) {
        let atoms = vec![
            Atom::cmp(0, CmpOp::Gt, 5),         // taste > 5
            Atom::cmp(1, CmpOp::Gt, 4),         // texture > 4
            Atom::unsupported(2, CmpOp::Eq, 1), // name LIKE e%s
        ];
        let f = Formula::Or(vec![
            Formula::Atom(0),
            Formula::And(vec![Formula::Atom(1), Formula::Atom(2)]),
        ]);
        (atoms, f)
    }

    #[test]
    fn paper_example_decomposition() {
        let (atoms, f) = paper_example();
        // Expected relaxation: (taste > 5) OR (texture > 4).
        let d = f.decompose(&atoms);
        assert_eq!(d, Formula::Or(vec![Formula::Atom(0), Formula::Atom(1)]));
    }

    #[test]
    fn decomposition_is_sound_never_prunes_a_match() {
        let (atoms, f) = paper_example();
        let p = FilterPruner::new(atoms, f).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let row = [
                rng.gen_range(0..10u64),
                rng.gen_range(0..10u64),
                rng.gen_range(0..2u64),
            ];
            if p.master_accepts(&row) {
                assert!(
                    p.process(&row).is_forward(),
                    "pruned a row the query selects: {row:?}"
                );
            }
        }
    }

    #[test]
    fn pruning_is_effective_where_it_can_be() {
        let (atoms, f) = paper_example();
        let p = FilterPruner::new(atoms, f).unwrap();
        // taste ≤ 5 and texture ≤ 4: provably rejected regardless of LIKE.
        assert!(p.process(&[3, 2, 1]).is_prune());
        // LIKE-only failures cannot be pruned (switch can't see it).
        assert!(p.process(&[3, 9, 0]).is_forward());
        assert!(!p.master_accepts(&[3, 9, 0]));
    }

    #[test]
    fn all_supported_formula_prunes_exactly() {
        let atoms = vec![Atom::cmp(0, CmpOp::Ge, 10), Atom::cmp(1, CmpOp::Lt, 3)];
        let f = Formula::And(vec![Formula::Atom(0), Formula::Atom(1)]);
        let p = FilterPruner::new(atoms, f).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5_000 {
            let row = [rng.gen_range(0..20u64), rng.gen_range(0..6u64)];
            assert_eq!(
                p.process(&row).is_forward(),
                p.master_accepts(&row),
                "fully-supported formula must prune exactly: {row:?}"
            );
        }
    }

    #[test]
    fn negated_literals_work() {
        // NOT (x == 5) AND y < 2 — NNF with a NotAtom literal.
        let atoms = vec![Atom::cmp(0, CmpOp::Eq, 5), Atom::cmp(1, CmpOp::Lt, 2)];
        let f = Formula::And(vec![Formula::NotAtom(0), Formula::Atom(1)]);
        let p = FilterPruner::new(atoms, f).unwrap();
        assert!(p.process(&[5, 1]).is_prune());
        assert!(p.process(&[4, 1]).is_forward());
        assert!(p.process(&[4, 3]).is_prune());
    }

    #[test]
    fn negated_unsupported_also_substituted() {
        // NOT LIKE is just as unsupported: must relax to True.
        let atoms = vec![Atom::unsupported(0, CmpOp::Eq, 1)];
        let f = Formula::NotAtom(0);
        assert_eq!(f.decompose(&atoms), Formula::True);
    }

    #[test]
    fn all_unsupported_means_no_pruning() {
        let atoms = vec![Atom::unsupported(0, CmpOp::Eq, 1)];
        let f = Formula::Atom(0);
        let p = FilterPruner::new(atoms, f).unwrap();
        assert!(p.process(&[0]).is_forward());
        assert!(p.process(&[1]).is_forward());
    }

    #[test]
    fn precomputed_atom_restores_pruning() {
        // The CWorker evaluates LIKE into column 2 (§4.1's alternative):
        // the whole formula becomes switch-checkable.
        let atoms = vec![
            Atom::cmp(0, CmpOp::Gt, 5),
            Atom::cmp(1, CmpOp::Gt, 4),
            Atom::precomputed(2),
        ];
        let f = Formula::Or(vec![
            Formula::Atom(0),
            Formula::And(vec![Formula::Atom(1), Formula::Atom(2)]),
        ]);
        let p = FilterPruner::new(atoms, f).unwrap();
        // texture > 4 but LIKE false: now pruned at the switch.
        assert!(p.process(&[3, 9, 0]).is_prune());
        assert!(p.process(&[3, 9, 1]).is_forward());
    }

    #[test]
    fn truth_table_matches_direct_eval() {
        let atoms = vec![
            Atom::cmp(0, CmpOp::Lt, 100),
            Atom::cmp(1, CmpOp::Ge, 50),
            Atom::cmp(2, CmpOp::Ne, 7),
        ];
        let f = Formula::Or(vec![
            Formula::And(vec![Formula::Atom(0), Formula::Atom(1)]),
            Formula::NotAtom(2),
        ]);
        let t = TruthTable::compile(&f).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2_000 {
            let row = [
                rng.gen_range(0..200u64),
                rng.gen_range(0..100u64),
                rng.gen_range(0..10u64),
            ];
            assert_eq!(t.eval(&atoms, &row), f.eval(&atoms, &row));
        }
    }

    #[test]
    fn truth_table_rejects_wide_formulas() {
        let atoms: Vec<Atom> = (0..20).map(|i| Atom::cmp(i, CmpOp::Gt, 0)).collect();
        let f = Formula::Or((0..20).map(Formula::Atom).collect());
        let _ = &atoms;
        match TruthTable::compile(&f) {
            Err(TooManyAtoms(n)) => assert_eq!(n, 20),
            Ok(_) => panic!("20-atom formula must be rejected"),
        }
    }

    #[test]
    fn cmp_op_negation_roundtrip() {
        for op in [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::Eq,
            CmpOp::Ne,
        ] {
            assert_eq!(op.negate().negate(), op);
            for (a, b) in [(1u64, 2u64), (2, 2), (3, 2)] {
                assert_eq!(op.eval(a, b), !op.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn constant_folding() {
        let atoms = vec![Atom::cmp(0, CmpOp::Gt, 5)];
        // (True AND x) OR False → x
        let f = Formula::Or(vec![
            Formula::And(vec![Formula::True, Formula::Atom(0)]),
            Formula::False,
        ]);
        assert_eq!(f.decompose(&atoms), Formula::Atom(0));
        // True OR x → True
        let f = Formula::Or(vec![Formula::True, Formula::Atom(0)]);
        assert_eq!(f.decompose(&atoms), Formula::True);
        // False AND x → False
        let f = Formula::And(vec![Formula::False, Formula::Atom(0)]);
        assert_eq!(f.decompose(&atoms), Formula::False);
    }

    #[test]
    fn resources_scale_with_arity() {
        let atoms = vec![Atom::cmp(0, CmpOp::Gt, 5), Atom::cmp(1, CmpOp::Lt, 9)];
        let f = Formula::And(vec![Formula::Atom(0), Formula::Atom(1)]);
        let p = FilterPruner::new(atoms, f).unwrap();
        let r = p.resources();
        assert_eq!(r.stages, 1);
        assert_eq!(r.alus, 2);
    }
}
