//! TOP N pruning (§4.3 Example 3 deterministic; §5 Example 7 randomized).
//!
//! `SELECT TOP N … ORDER BY c` needs the master to receive (a superset of)
//! the `N` largest values. Two switch algorithms:
//!
//! * [`DeterministicTopN`] — a handful of threshold counters. The switch
//!   forwards the first `N` entries while computing their minimum `t₀`;
//!   afterwards everything below the active threshold is pruned. It
//!   speculatively arms exponentially-spaced thresholds `tᵢ = 2ⁱ·t₀` and
//!   activates `tᵢ` once `N` entries above it have been *forwarded*, so the
//!   guarantee stays deterministic.
//! * [`RandomizedTopN`] — a `d × w` matrix; each entry is hashed to a row
//!   that tracks the `w` largest values mapped to it (a rolling minimum
//!   across `w` stages). An entry smaller than all `w` cached values is
//!   pruned. Theorem 2 picks `w` so that, with probability `1 − δ`, no row
//!   receives more than `w` of the true top-`N` — in which case no output
//!   entry is ever pruned (see [`crate::params`]).

use crate::decision::{Decision, RowPruner};
use crate::hash::HashFn;
use crate::params;
use crate::resources::{table2, ResourceUsage};

/// Deterministic TOP N pruner using `w` exponential threshold counters.
///
/// Default configuration in Table 2: `N = 250, w = 4`.
#[derive(Debug, Clone)]
pub struct DeterministicTopN {
    n: u64,
    w: usize,
    seen: u64,
    /// Minimum among the first `n` entries; becomes `t₀` when `seen == n`.
    running_min: u64,
    /// `thresholds[i] = max(t₀,1) · 2^(i+1)`, armed after warm-up.
    thresholds: Vec<u64>,
    /// Forwarded entries strictly above each threshold.
    counters: Vec<u64>,
    /// Currently active pruning threshold (entries `<` it are pruned).
    active: u64,
    /// Ladder prefix already activated: `counters[..active_idx]` all
    /// reached `n`. Counters are nonincreasing in the ladder index (the
    /// thresholds ascend), so the activated set is always a prefix and
    /// only its frontier needs checking — no rescan of all `w`.
    active_idx: usize,
}

impl DeterministicTopN {
    /// Create a pruner for the `n` largest values with `w` speculative
    /// thresholds (each threshold costs one pipeline stage, Table 2).
    pub fn new(n: u64, w: usize) -> Self {
        assert!(n > 0, "TOP 0 is trivial");
        DeterministicTopN {
            n,
            w,
            seen: 0,
            running_min: u64::MAX,
            thresholds: Vec::with_capacity(w),
            counters: vec![0; w],
            active: 0,
            active_idx: 0,
        }
    }

    /// Process one value; maximizing semantics (ORDER BY … DESC LIMIT n).
    pub fn process(&mut self, value: u64) -> Decision {
        if self.seen < self.n {
            // Warm-up: forward unconditionally, learn t₀.
            self.seen += 1;
            self.running_min = self.running_min.min(value);
            if self.seen == self.n {
                let t0 = self.running_min;
                self.active = t0;
                // Exponential ladder above t₀; base 1 when t₀ = 0 so the
                // ladder still climbs (activation keeps it safe).
                let base = t0.max(1);
                self.thresholds = (0..self.w)
                    .map(|i| {
                        base.saturating_mul(1u64.checked_shl(i as u32 + 1).unwrap_or(u64::MAX))
                    })
                    .collect();
            }
            return Decision::Forward;
        }
        if value < self.active {
            return Decision::Prune;
        }
        // Forwarded: credit every armed threshold strictly below the value.
        // The ladder ascends, so stop at the first threshold ≥ value
        // instead of scanning all w counters.
        for (t, c) in self.thresholds.iter().zip(self.counters.iter_mut()) {
            if value > *t {
                *c += 1;
            } else {
                break;
            }
        }
        // Activate the highest threshold with n forwarded entries above
        // it. Counters are nonincreasing along the ladder, so the
        // activated set is a prefix: advance its frontier instead of
        // rescanning all w thresholds per entry.
        while self.active_idx < self.thresholds.len() && self.counters[self.active_idx] >= self.n {
            self.active = self.active.max(self.thresholds[self.active_idx]);
            self.active_idx += 1;
        }
        Decision::Forward
    }

    /// Block loop: hoists the self-dispatch and reads the ORDER BY lane
    /// directly (decisions identical to per-row processing).
    fn process_values(&mut self, values: &[u64], out: &mut [Decision]) {
        for (d, &v) in out.iter_mut().zip(values) {
            *d = self.process(v);
        }
    }

    /// The threshold below which entries are currently pruned.
    pub fn active_threshold(&self) -> u64 {
        self.active
    }

    /// Table 2 resources: `w + 1` stages, `w + 1` ALUs, `(w+1)×64b` SRAM.
    pub fn resources(&self) -> ResourceUsage {
        table2::topn_det(self.w as u32)
    }
}

impl RowPruner for DeterministicTopN {
    fn process_row(&mut self, row: &[u64]) -> Decision {
        self.process(row[0])
    }

    fn process_block(&mut self, cols: &[&[u64]], out: &mut [Decision]) {
        self.process_values(cols[0], out);
    }

    fn reset(&mut self) {
        let (n, w) = (self.n, self.w);
        *self = DeterministicTopN::new(n, w);
    }

    fn name(&self) -> &'static str {
        "topn-det"
    }
}

/// Randomized TOP N pruner: `d` rows, each a rolling-minimum cache of the
/// `w` largest values hashed to it (Figure 2 of the paper).
///
/// Entries are *randomly* partitioned (a per-entry random row, not a hash of
/// the value — values repeat in ORDER BY columns and must spread).
#[derive(Debug, Clone)]
pub struct RandomizedTopN {
    d: usize,
    w: usize,
    /// Flattened `d × w`, each row sorted descending.
    cells: Vec<u64>,
    lens: Vec<u16>,
    /// Sequence-seeded row selector: row = h(counter), i.e. uniform random
    /// and reproducible.
    row_hash: HashFn,
    counter: u64,
}

impl RandomizedTopN {
    /// Create a matrix with `d` rows and `w` columns.
    ///
    /// Use [`params::topn_columns`] / [`params::topn_optimal_config`] to set
    /// the dimensions from `(N, δ)`. Table 2 default: `N=250, w=4, d=4096`.
    pub fn new(d: usize, w: usize, seed: u64) -> Self {
        assert!(d > 0 && w > 0 && w <= u16::MAX as usize);
        RandomizedTopN {
            d,
            w,
            cells: vec![0; d * w],
            lens: vec![0; d],
            row_hash: HashFn::new(seed),
            counter: 0,
        }
    }

    /// A pruner configured per Theorem 2 for `(n, δ)` given `d` rows.
    /// Returns `None` if `(d, n, δ)` is infeasible.
    pub fn for_query(d: usize, n: usize, delta: f64, seed: u64) -> Option<Self> {
        params::topn_columns(d, n, delta).map(|w| Self::new(d, w, seed))
    }

    /// A pruner at the space-optimal `(d*, w*)` for `(n, δ)` (Appendix E).
    pub fn optimal(n: usize, delta: f64, seed: u64) -> Option<Self> {
        params::topn_optimal_config(n, delta).map(|(d, w)| Self::new(d, w, seed))
    }

    /// Process one value; maximizing semantics.
    pub fn process(&mut self, value: u64) -> Decision {
        let r = self.next_row();
        self.process_in_row(r, value)
    }

    /// Draw the next entry's (uniform random) row — exposed so the §9
    /// batching adapter can resolve collisions before processing.
    pub fn next_row(&mut self) -> usize {
        let r = self.row_hash.bucket(self.counter, self.d);
        self.counter += 1;
        r
    }

    /// Process a value in a caller-chosen row.
    pub fn process_in_row(&mut self, r: usize, value: u64) -> Decision {
        let base = r * self.w;
        let len = self.lens[r] as usize;
        if len == self.w {
            let min = self.cells[base + self.w - 1];
            if value < min {
                // Smaller than all w cached values in its row.
                return Decision::Prune;
            }
            if value == min {
                // Not smaller than all cached values: forward; replacing an
                // equal minimum would be a no-op, so skip the state write.
                return Decision::Forward;
            }
            // Rolling replacement: insert in sorted position, drop the
            // row minimum off the end.
            let pos = self.cells[base..base + self.w].partition_point(|&c| c >= value);
            self.cells[base + pos..base + self.w].rotate_right(1);
            self.cells[base + pos] = value;
            return Decision::Forward;
        }
        // Row not yet full: insert keeping descending order.
        let pos = self.cells[base..base + len].partition_point(|&c| c >= value);
        self.cells[base + pos..base + len + 1].rotate_right(1);
        self.cells[base + pos] = value;
        self.lens[r] = (len + 1) as u16;
        Decision::Forward
    }

    /// Matrix dimensions `(d, w)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.d, self.w)
    }

    /// Export the matrix's resident candidate values, sorted descending —
    /// the switch-side top-N candidate set a multi-switch combiner (or a
    /// telemetry probe) can inspect without draining the stream. The
    /// stream's maximum is always resident (insertions drop only row
    /// minima), but the *guarantee* still travels with the forwarded
    /// entries: a value forwarded early and later displaced from its row
    /// lives only in the master's stream, so re-selection must always run
    /// over forwarded candidates, with this export as the register view.
    pub fn export_candidates(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.lens.iter().map(|&l| l as usize).sum());
        for r in 0..self.d {
            let len = self.lens[r] as usize;
            out.extend_from_slice(&self.cells[r * self.w..r * self.w + len]);
        }
        out.sort_unstable_by(|a, b| b.cmp(a));
        out
    }

    /// Table 2 resources: `w` stages, `w` ALUs, `(d·w)×64b` SRAM.
    pub fn resources(&self) -> ResourceUsage {
        table2::topn_rand(self.w as u32, self.d as u64)
    }
}

impl RowPruner for RandomizedTopN {
    fn process_row(&mut self, row: &[u64]) -> Decision {
        self.process(row[0])
    }

    fn process_block(&mut self, cols: &[&[u64]], out: &mut [Decision]) {
        // One virtual call per block; the sequential row draw inside
        // `process` keeps decisions identical to the per-row path.
        for (d, &v) in out.iter_mut().zip(cols[0]) {
            *d = self.process(v);
        }
    }

    fn reset(&mut self) {
        self.cells.fill(0);
        self.lens.fill(0);
        self.counter = 0;
    }

    fn name(&self) -> &'static str {
        "topn-rand"
    }
}

/// [`crate::batch::BatchAccess`] adapter for §9 multi-entry packets: every
/// entry draws its uniform row up front; collided entries are forwarded
/// unprocessed.
#[derive(Debug, Clone)]
pub struct TopNBatchAccess {
    inner: RandomizedTopN,
    pending_row: Option<usize>,
}

impl TopNBatchAccess {
    /// Wrap a randomized TOP N pruner for batching.
    pub fn new(inner: RandomizedTopN) -> Self {
        TopNBatchAccess {
            inner,
            pending_row: None,
        }
    }
}

impl crate::batch::BatchAccess for TopNBatchAccess {
    fn row_of(&mut self, _entry: &[u64]) -> usize {
        let r = self.inner.next_row();
        self.pending_row = Some(r);
        r
    }

    fn process_one(&mut self, entry: &[u64]) -> Decision {
        let r = self.pending_row.take().expect("row_of called first");
        self.inner.process_in_row(r, entry[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    /// Top-n multiset of a stream.
    fn true_topn(stream: &[u64], n: usize) -> Vec<u64> {
        let mut v = stream.to_vec();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v.truncate(n);
        v
    }

    /// Check the pruning invariant: forwarded ⊇ top-n (as multisets).
    fn forwarded_covers_topn(stream: &[u64], forwarded: &[u64], n: usize) -> bool {
        let top = true_topn(stream, n);
        let mut fwd = forwarded.to_vec();
        fwd.sort_unstable_by(|a, b| b.cmp(a));
        // Every element of `top` must appear in `fwd` with at least the
        // same multiplicity; since both are sorted desc, compare prefixes.
        let mut fi = 0;
        for t in top {
            while fi < fwd.len() && fwd[fi] > t {
                fi += 1;
            }
            if fi >= fwd.len() || fwd[fi] != t {
                return false;
            }
            fi += 1;
        }
        true
    }

    #[test]
    fn deterministic_never_prunes_topn() {
        let mut rng = StdRng::seed_from_u64(1);
        for trial in 0..20 {
            let m = 20_000;
            let stream: Vec<u64> = (0..m).map(|_| rng.gen_range(0..1_000_000)).collect();
            let mut p = DeterministicTopN::new(100, 4);
            let forwarded: Vec<u64> = stream
                .iter()
                .copied()
                .filter(|&v| p.process(v).is_forward())
                .collect();
            assert!(
                forwarded_covers_topn(&stream, &forwarded, 100),
                "trial {trial}: deterministic TOP N pruned an output entry"
            );
        }
    }

    #[test]
    fn deterministic_prunes_on_uniform_streams() {
        // On uniform data the exponential ladder only reaches ~2^w·t₀ with
        // t₀ ≈ max/N, so pruning is modest — the motivation for the
        // randomized variant (Figure 10c).
        let mut rng = StdRng::seed_from_u64(2);
        let stream: Vec<u64> = (0..50_000)
            .map(|_| rng.gen_range(0..1_000_000u64))
            .collect();
        let mut p = DeterministicTopN::new(250, 4);
        let pruned = stream.iter().filter(|&&v| p.process(v).is_prune()).count();
        assert!(pruned > 500, "expected some pruning, got {pruned}/50000");
    }

    #[test]
    fn deterministic_prunes_heavily_on_skewed_streams() {
        // Heavy-tailed values (most small, few large) let the ladder climb
        // well past t₀ and prune the bulk of the stream.
        let mut rng = StdRng::seed_from_u64(12);
        let stream: Vec<u64> = (0..50_000)
            .map(|_| {
                let exp = rng.gen_range(0..24u32);
                rng.gen_range(0..(1u64 << exp).max(2))
            })
            .collect();
        let mut p = DeterministicTopN::new(100, 12);
        let forwarded: Vec<u64> = stream
            .iter()
            .copied()
            .filter(|&v| p.process(v).is_forward())
            .collect();
        assert!(
            forwarded.len() < 25_000,
            "skewed stream should prune >50%, forwarded {}",
            forwarded.len()
        );
        assert!(forwarded_covers_topn(&stream, &forwarded, 100));
    }

    #[test]
    fn deterministic_threshold_climbs() {
        // Feed N small entries then a flood of big ones: the active
        // threshold must rise above t0.
        let mut p = DeterministicTopN::new(10, 4);
        for v in 0..10u64 {
            assert!(p.process(v + 1).is_forward());
        }
        let t0 = p.active_threshold();
        assert_eq!(t0, 1);
        for _ in 0..100 {
            p.process(1000);
        }
        assert!(p.active_threshold() > t0, "threshold should climb");
        // Entries below the climbed threshold are pruned.
        assert!(p.process(2).is_prune());
    }

    #[test]
    fn deterministic_handles_zero_t0() {
        let mut p = DeterministicTopN::new(5, 4);
        for _ in 0..5 {
            assert!(p.process(0).is_forward());
        }
        // t0 = 0: nothing below it, but the ladder still arms at 2,4,8,16.
        for _ in 0..10 {
            p.process(100);
        }
        assert!(p.active_threshold() > 0);
        assert!(p.process(1).is_prune());
        // Values above the ladder still forwarded.
        assert!(p.process(1_000).is_forward());
    }

    #[test]
    fn deterministic_monotone_stream_forwards_everything() {
        // Worst case from §5: monotonically increasing input defeats
        // pruning but must stay correct.
        let mut p = DeterministicTopN::new(50, 4);
        for v in 0..5_000u64 {
            assert!(p.process(v).is_forward(), "monotone stream: {v} pruned");
        }
    }

    #[test]
    fn randomized_succeeds_at_theorem2_dimensions() {
        // d=481, w=19 guarantees 99.99% success for N=1000; check a few
        // random-order streams never lose a top-N entry.
        let (d, w) = params::topn_optimal_config(1000, 1e-4).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for trial in 0..5 {
            let mut stream: Vec<u64> = (0..100_000u64).collect();
            stream.shuffle(&mut rng);
            let mut p = RandomizedTopN::new(d, w, trial);
            let forwarded: Vec<u64> = stream
                .iter()
                .copied()
                .filter(|&v| p.process(v).is_forward())
                .collect();
            assert!(
                forwarded_covers_topn(&stream, &forwarded, 1000),
                "trial {trial}: randomized TOP N pruned an output entry"
            );
        }
    }

    #[test]
    fn randomized_pruning_beats_theorem3_bound() {
        let (d, w) = (481, 19);
        let m = 200_000u64;
        let mut rng = StdRng::seed_from_u64(4);
        let mut stream: Vec<u64> = (0..m).collect();
        stream.shuffle(&mut rng);
        let mut p = RandomizedTopN::new(d, w, 7);
        let forwarded = stream
            .iter()
            .filter(|&&v| p.process(v).is_forward())
            .count() as f64;
        let bound = params::topn_expected_unpruned(m, d, w);
        // Theorem 3 bounds the expectation; allow 30% slack for one run.
        assert!(
            forwarded <= bound * 1.3,
            "forwarded {forwarded} far above Theorem 3 bound {bound}"
        );
    }

    #[test]
    fn randomized_duplicates_handled() {
        let mut p = RandomizedTopN::new(4, 2, 0);
        // All-equal stream: an entry equal to the row minimum is "not
        // smaller than all cached values", so nothing is ever pruned.
        for _ in 0..100 {
            assert!(p.process(7).is_forward());
        }
        // Rows hold at most w values each.
        assert!(p.lens.iter().all(|&l| l <= 2));
    }

    #[test]
    fn randomized_rows_stay_sorted() {
        let mut p = RandomizedTopN::new(8, 4, 9);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            p.process(rng.gen::<u64>() % 1000);
        }
        for r in 0..8 {
            let len = p.lens[r] as usize;
            let row = &p.cells[r * 4..r * 4 + len];
            assert!(
                row.windows(2).all(|w| w[0] >= w[1]),
                "row {r} not sorted desc: {row:?}"
            );
        }
    }

    #[test]
    fn export_candidates_holds_the_resident_top_values() {
        let mut p = RandomizedTopN::new(8, 4, 3);
        let mut rng = StdRng::seed_from_u64(6);
        let stream: Vec<u64> = (0..5_000).map(|_| rng.gen_range(1..1_000_000)).collect();
        for &v in &stream {
            p.process(v);
        }
        let cands = p.export_candidates();
        assert!(cands.len() <= 8 * 4, "at most d·w resident candidates");
        assert!(
            cands.windows(2).all(|w| w[0] >= w[1]),
            "export must be sorted descending"
        );
        let max = stream.iter().copied().max().unwrap();
        assert_eq!(cands[0], max, "the stream maximum is always resident");
        assert!(RandomizedTopN::new(4, 2, 0).export_candidates().is_empty());
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut p = RandomizedTopN::new(4, 2, 0);
        for v in 0..100 {
            p.process(v);
        }
        p.reset();
        assert!(p.lens.iter().all(|&l| l == 0));
        assert_eq!(p.counter, 0);

        let mut d = DeterministicTopN::new(10, 4);
        for v in 0..100 {
            d.process(v);
        }
        d.reset();
        assert_eq!(d.active_threshold(), 0);
    }

    #[test]
    fn resources_match_table2_defaults() {
        let det = DeterministicTopN::new(250, 4);
        assert_eq!(det.resources().stages, 5);
        let rand = RandomizedTopN::new(4096, 4, 0);
        assert_eq!(rand.resources().stages, 4);
        assert_eq!(rand.resources().sram_bits, 4096 * 4 * 64);
    }

    #[test]
    fn row_pruner_names() {
        assert_eq!(DeterministicTopN::new(1, 1).name(), "topn-det");
        assert_eq!(RandomizedTopN::new(1, 1, 0).name(), "topn-rand");
    }
}
