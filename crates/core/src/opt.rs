//! Unconstrained streaming baselines — the `OPT` curves of Figures 10/11.
//!
//! "OPT depicts a hypothetical stream algorithm with no resource
//! constraints" (§8.3): an upper bound on the pruning rate of *any* switch
//! algorithm. Each OPT mirrors the semantics of its constrained
//! counterpart with unbounded memory:
//!
//! * DISTINCT — forward exactly first occurrences;
//! * TOP N — forward an entry iff it is among the `N` largest *so far*;
//! * GROUP BY MAX — forward iff the entry improves its key's running max;
//! * JOIN — exact membership of the other side's key set;
//! * HAVING — forward only entries of keys whose *final* aggregate clears
//!   the threshold (offline optimum);
//! * SKYLINE — forward iff not dominated by any previous point.

use crate::decision::Decision;
use crate::skyline::dominates;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// OPT for DISTINCT: an exact seen-set.
#[derive(Debug, Default)]
pub struct OptDistinct {
    seen: HashSet<u64>,
}

impl OptDistinct {
    /// Fresh OPT state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward iff this is the first occurrence.
    pub fn process(&mut self, value: u64) -> Decision {
        if self.seen.insert(value) {
            Decision::Forward
        } else {
            Decision::Prune
        }
    }
}

/// OPT for TOP N: forward an entry iff it belongs to the running top-`N`.
#[derive(Debug)]
pub struct OptTopN {
    n: usize,
    /// Min-heap of the current top-n (via `Reverse`).
    heap: BinaryHeap<std::cmp::Reverse<u64>>,
}

impl OptTopN {
    /// OPT tracking the `n` largest values.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        OptTopN {
            n,
            heap: BinaryHeap::with_capacity(n + 1),
        }
    }

    /// Forward iff the value enters the current top-`n`.
    pub fn process(&mut self, value: u64) -> Decision {
        if self.heap.len() < self.n {
            self.heap.push(std::cmp::Reverse(value));
            return Decision::Forward;
        }
        let min = self.heap.peek().expect("heap non-empty").0;
        if value > min {
            self.heap.pop();
            self.heap.push(std::cmp::Reverse(value));
            Decision::Forward
        } else {
            Decision::Prune
        }
    }
}

/// OPT for GROUP BY MAX: exact per-key running maxima.
#[derive(Debug, Default)]
pub struct OptGroupByMax {
    best: HashMap<u64, u64>,
}

impl OptGroupByMax {
    /// Fresh OPT state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward iff the value strictly improves its key's maximum (or the
    /// key is new).
    pub fn process(&mut self, key: u64, value: u64) -> Decision {
        match self.best.get_mut(&key) {
            Some(b) if *b >= value => Decision::Prune,
            Some(b) => {
                *b = value;
                Decision::Forward
            }
            None => {
                self.best.insert(key, value);
                Decision::Forward
            }
        }
    }
}

/// OPT for JOIN: exact key set of the opposite side.
#[derive(Debug, Default)]
pub struct OptJoin {
    other_side: HashSet<u64>,
}

impl OptJoin {
    /// Build from the exact key set of the opposite table.
    pub fn from_keys(keys: impl IntoIterator<Item = u64>) -> Self {
        OptJoin {
            other_side: keys.into_iter().collect(),
        }
    }

    /// Forward iff the key actually matches.
    pub fn process(&self, key: u64) -> Decision {
        if self.other_side.contains(&key) {
            Decision::Forward
        } else {
            Decision::Prune
        }
    }
}

/// OPT unpruned count for HAVING `SUM > c`: only entries of keys whose
/// final sum clears the threshold need to reach the master (the offline
/// optimum — no streaming algorithm can do better and stay correct).
pub fn opt_having_unpruned(entries: &[(u64, u64)], threshold: u64) -> u64 {
    let mut sums: HashMap<u64, u64> = HashMap::new();
    for &(k, v) in entries {
        *sums.entry(k).or_insert(0) += v;
    }
    let winners: HashSet<u64> = sums
        .into_iter()
        .filter(|&(_, s)| s > threshold)
        .map(|(k, _)| k)
        .collect();
    entries.iter().filter(|(k, _)| winners.contains(k)).count() as u64
}

/// OPT for SKYLINE: forward iff not dominated by any previous point
/// (maintains the exact prefix Pareto set).
#[derive(Debug, Default)]
pub struct OptSkyline {
    frontier: Vec<Vec<u64>>,
}

impl OptSkyline {
    /// Fresh OPT state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward iff no previously seen point dominates this one.
    pub fn process(&mut self, point: &[u64]) -> Decision {
        if self.frontier.iter().any(|f| dominates(f, point)) {
            return Decision::Prune;
        }
        // Keep the frontier minimal: drop stored points the new one
        // dominates (they can never dominate anything it can't).
        self.frontier.retain(|f| !dominates(point, f));
        self.frontier.push(point.to_vec());
        Decision::Forward
    }

    /// Current frontier size (diagnostics).
    pub fn frontier_len(&self) -> usize {
        self.frontier.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn opt_distinct_counts_exactly() {
        let mut o = OptDistinct::new();
        let mut forwarded = 0;
        let mut rng = StdRng::seed_from_u64(1);
        let mut truth = HashSet::new();
        for _ in 0..10_000 {
            let v = rng.gen_range(0..500u64);
            truth.insert(v);
            if o.process(v).is_forward() {
                forwarded += 1;
            }
        }
        assert_eq!(forwarded as usize, truth.len());
    }

    #[test]
    fn opt_topn_forwards_running_top() {
        let mut o = OptTopN::new(3);
        let ds: Vec<bool> = [5u64, 1, 6, 2, 7, 3, 8]
            .iter()
            .map(|&v| o.process(v).is_forward())
            .collect();
        // 5,1,6 fill; 2 < min(1? heap={5,1,6}, min 1 → 2>1 forward);
        // after: {5,6,2}. 7 > 2 fwd → {5,6,7}. 3 < 5 prune. 8 fwd.
        assert_eq!(ds, vec![true, true, true, true, true, false, true]);
    }

    #[test]
    fn opt_topn_is_lower_bound_for_constrained() {
        // OPT forwards no more than the randomized matrix on any stream.
        use crate::topn::RandomizedTopN;
        let mut rng = StdRng::seed_from_u64(2);
        let stream: Vec<u64> = (0..20_000).map(|_| rng.gen()).collect();
        let mut opt = OptTopN::new(100);
        let mut rand = RandomizedTopN::new(128, 8, 0);
        let mut opt_fwd = 0u64;
        let mut rand_fwd = 0u64;
        for &v in &stream {
            if opt.process(v).is_forward() {
                opt_fwd += 1;
            }
            if rand.process(v).is_forward() {
                rand_fwd += 1;
            }
        }
        assert!(
            opt_fwd <= rand_fwd,
            "OPT must dominate: {opt_fwd} vs {rand_fwd}"
        );
    }

    #[test]
    fn opt_groupby_max() {
        let mut o = OptGroupByMax::new();
        assert!(o.process(1, 10).is_forward());
        assert!(o.process(1, 10).is_prune(), "tie does not improve");
        assert!(o.process(1, 11).is_forward());
        assert!(o.process(2, 1).is_forward());
    }

    #[test]
    fn opt_join_exact() {
        let o = OptJoin::from_keys([1, 2, 3]);
        assert!(o.process(2).is_forward());
        assert!(o.process(9).is_prune());
    }

    #[test]
    fn opt_having_counts_winner_entries() {
        let entries = vec![(1u64, 10u64), (1, 10), (2, 1), (2, 2), (1, 5)];
        // sums: key1=25, key2=3. threshold 20 → only key1's 3 entries.
        assert_eq!(opt_having_unpruned(&entries, 20), 3);
        assert_eq!(opt_having_unpruned(&entries, 30), 0);
        assert_eq!(opt_having_unpruned(&entries, 2), 5);
    }

    #[test]
    fn opt_skyline_prefix_frontier() {
        let mut o = OptSkyline::new();
        assert!(o.process(&[5, 5]).is_forward());
        assert!(o.process(&[3, 3]).is_prune());
        assert!(o.process(&[6, 4]).is_forward());
        assert!(o.process(&[9, 9]).is_forward());
        // (9,9) dominates everything stored: frontier collapses to 1.
        assert_eq!(o.frontier_len(), 1);
        assert!(o.process(&[5, 5]).is_prune());
    }

    #[test]
    fn opt_skyline_never_prunes_true_skyline_point() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts: Vec<Vec<u64>> = (0..3_000)
            .map(|_| vec![rng.gen_range(0..1000u64), rng.gen_range(0..1000u64)])
            .collect();
        let mut o = OptSkyline::new();
        let forwarded: Vec<Vec<u64>> = pts
            .iter()
            .filter(|p| o.process(p).is_forward())
            .cloned()
            .collect();
        // True skyline ⊆ forwarded.
        for p in &pts {
            if !pts.iter().any(|q| dominates(q, p)) {
                assert!(forwarded.contains(p), "OPT pruned a skyline point");
            }
        }
    }
}
