//! Switch resource accounting (Table 2 of the paper, §7 and Appendix A.2).
//!
//! Every Cheetah algorithm is parametric and must fit the pipeline's
//! per-stage ALU count, SRAM, TCAM and stage budget. This module holds the
//! closed-form resource formulas from Table 2 plus a simple switch model
//! with Tofino-like defaults, used both by the experiment reproducing
//! Table 2 and by the multi-query packer (§6).

/// Resources one algorithm instance consumes on the switch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceUsage {
    /// Pipeline stages occupied.
    pub stages: u32,
    /// Total stateful ALUs used across those stages.
    pub alus: u32,
    /// SRAM bits for registers / match-action tables.
    pub sram_bits: u64,
    /// TCAM entries (ternary rules), e.g. for APH MSB lookup or range match.
    pub tcam_entries: u32,
}

impl ResourceUsage {
    /// Component-wise sum — used when packing several queries (§6).
    ///
    /// Summing stages is conservative: Cheetah packs queries that are heavy
    /// in *different* resources onto the same stages, which the
    /// `cheetah-pisa` placer models more faithfully.
    pub fn plus(self, other: ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            stages: self.stages + other.stages,
            alus: self.alus + other.alus,
            sram_bits: self.sram_bits + other.sram_bits,
            tcam_entries: self.tcam_entries + other.tcam_entries,
        }
    }

    /// SRAM usage in kilobytes (for printing Table 2).
    pub fn sram_kb(&self) -> f64 {
        self.sram_bits as f64 / 8.0 / 1024.0
    }

    /// Whether this usage fits a switch model at all (stage count, total
    /// ALU/SRAM/TCAM capacity).
    pub fn fits(&self, model: &SwitchModel) -> bool {
        self.stages <= model.stages
            && self.alus <= model.stages * model.alus_per_stage
            && self.sram_bits <= u64::from(model.stages) * model.sram_per_stage_bits
            && self.tcam_entries <= model.tcam_entries
    }
}

/// A PISA switch resource envelope.
///
/// Defaults follow the constraints quoted in §2.2: 12–60 stages (we use a
/// conservative 12 per pipeline pass), around ten comparisons per stage,
/// under 100 MB of SRAM split across stages, and 100K–300K TCAM entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchModel {
    /// Match-action pipeline stages available to Cheetah.
    pub stages: u32,
    /// Stateful ALUs per stage ("no more than ten comparisons in one stage").
    pub alus_per_stage: u32,
    /// SRAM bits per stage.
    pub sram_per_stage_bits: u64,
    /// Total TCAM entries.
    pub tcam_entries: u32,
    /// Bits of packet header vector that can cross stages (§2.2: 10–20 B of
    /// values per entry; the PHV itself is larger, this is Cheetah's share).
    pub phv_bits: u32,
}

impl SwitchModel {
    /// A Tofino-like envelope used throughout the evaluation.
    pub fn tofino_like() -> Self {
        SwitchModel {
            stages: 12,
            alus_per_stage: 10,
            // ~4 MB per stage ⇒ 48 MB total, inside the "<100MB" quote.
            sram_per_stage_bits: 4 * 8 * 1024 * 1024,
            tcam_entries: 100_000,
            // Figure 4's variable-length value area: up to four 64-bit
            // values per entry (the paper quotes 10–20 B as typical).
            phv_bits: 256,
        }
    }

    /// A second-generation (Tofino-2-like) envelope: more stages and SRAM.
    pub fn tofino2_like() -> Self {
        SwitchModel {
            stages: 20,
            alus_per_stage: 10,
            sram_per_stage_bits: 8 * 8 * 1024 * 1024,
            tcam_entries: 300_000,
            phv_bits: 256,
        }
    }
}

impl Default for SwitchModel {
    fn default() -> Self {
        SwitchModel::tofino_like()
    }
}

/// Table 2 formulas. `a` is the per-stage ALU count `A` of the switch.
pub mod table2 {
    use super::ResourceUsage;

    /// DISTINCT with FIFO replacement: `⌈w/A⌉` stages, `w` ALUs,
    /// `(d·w)×64b` SRAM (assumes same-stage ALUs share memory).
    pub fn distinct_fifo(w: u32, d: u64, a: u32) -> ResourceUsage {
        ResourceUsage {
            stages: w.div_ceil(a),
            alus: w,
            sram_bits: d * u64::from(w) * 64,
            tcam_entries: 0,
        }
    }

    /// DISTINCT with LRU (rolling) replacement: `w` stages, `w` ALUs.
    pub fn distinct_lru(w: u32, d: u64) -> ResourceUsage {
        ResourceUsage {
            stages: w,
            alus: w,
            sram_bits: d * u64::from(w) * 64,
            tcam_entries: 0,
        }
    }

    /// SKYLINE with the SUM projection: `log₂D + 2w` stages,
    /// `2log₂D − 1 + w(D+1)` ALUs, `w(D+1)×64b` SRAM.
    pub fn skyline_sum(dims: u32, w: u32) -> ResourceUsage {
        let log_d = dims.max(1).ilog2(); // ⌊log₂D⌋
        ResourceUsage {
            stages: log_d + 2 * w,
            alus: (2 * log_d).saturating_sub(1) + w * (dims + 1),
            sram_bits: u64::from(w) * u64::from(dims + 1) * 64,
            tcam_entries: 0,
        }
    }

    /// SKYLINE with the Approximate Product Heuristic:
    /// `log₂D + 2(w+1)` stages, `w(D+1)×64b + 2¹⁶×32b` SRAM, `64·D` TCAM.
    pub fn skyline_aph(dims: u32, w: u32) -> ResourceUsage {
        let log_d = dims.max(1).ilog2();
        ResourceUsage {
            stages: log_d + 2 * (w + 1),
            alus: (2 * log_d).saturating_sub(1) + w * (dims + 1),
            sram_bits: u64::from(w) * u64::from(dims + 1) * 64 + (1 << 16) * 32,
            tcam_entries: 64 * dims,
        }
    }

    /// Deterministic TOP N: `w+1` stages, `w+1` ALUs, `(w+1)×64b` SRAM.
    pub fn topn_det(w: u32) -> ResourceUsage {
        ResourceUsage {
            stages: w + 1,
            alus: w + 1,
            sram_bits: u64::from(w + 1) * 64,
            tcam_entries: 0,
        }
    }

    /// Randomized TOP N: `w` stages, `w` ALUs, `(d·w)×64b` SRAM.
    pub fn topn_rand(w: u32, d: u64) -> ResourceUsage {
        ResourceUsage {
            stages: w,
            alus: w,
            sram_bits: d * u64::from(w) * 64,
            tcam_entries: 0,
        }
    }

    /// GROUP BY: `w` stages, `w` ALUs, `d·w×64b` SRAM.
    pub fn group_by(w: u32, d: u64) -> ResourceUsage {
        ResourceUsage {
            stages: w,
            alus: w,
            sram_bits: d * u64::from(w) * 64,
            tcam_entries: 0,
        }
    }

    /// JOIN with a classic Bloom filter of `m_bits` and `h` hash functions:
    /// 2 stages, `h` ALUs, `M` SRAM.
    pub fn join_bf(m_bits: u64, h: u32) -> ResourceUsage {
        ResourceUsage {
            stages: 2,
            alus: h,
            sram_bits: m_bits,
            tcam_entries: 0,
        }
    }

    /// JOIN with the Register Bloom filter: 1 stage, 1 ALU,
    /// `M + ⌈64/H⌉×64b` SRAM (the pattern table).
    pub fn join_rbf(m_bits: u64, h: u32) -> ResourceUsage {
        ResourceUsage {
            stages: 1,
            alus: 1,
            sram_bits: m_bits + u64::from(64u32.div_ceil(h)) * 64,
            tcam_entries: 0,
        }
    }

    /// HAVING with a `d`-row, `w`-column Count-Min sketch:
    /// `⌈d/A⌉` stages, `d` ALUs, `(d·w)×64b` SRAM.
    pub fn having(w: u64, d: u32, a: u32) -> ResourceUsage {
        ResourceUsage {
            stages: d.div_ceil(a),
            alus: d,
            sram_bits: u64::from(d) * w * 64,
            tcam_entries: 0,
        }
    }

    /// Filtering one runtime-configurable predicate: 1 ALU, one 32-bit
    /// register for the constant (Appendix A.2.2).
    pub fn filter(predicates: u32) -> ResourceUsage {
        ResourceUsage {
            stages: 1,
            alus: predicates,
            sram_bits: u64::from(predicates) * 32,
            tcam_entries: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::table2::*;
    use super::*;

    #[test]
    fn table2_distinct_defaults() {
        // Defaults w=2, d=4096 on a switch with A=10 ALUs/stage.
        let fifo = distinct_fifo(2, 4096, 10);
        assert_eq!(fifo.stages, 1);
        assert_eq!(fifo.alus, 2);
        assert_eq!(fifo.sram_bits, 4096 * 2 * 64);
        let lru = distinct_lru(2, 4096);
        assert_eq!(lru.stages, 2);
    }

    #[test]
    fn table2_skyline_defaults() {
        // Defaults D=2, w=10.
        let sum = skyline_sum(2, 10);
        assert_eq!(sum.stages, 1 + 20); // log₂2 + 2·10
        assert_eq!(sum.sram_bits, 10 * 3 * 64);
        assert_eq!(sum.tcam_entries, 0);
        let aph = skyline_aph(2, 10);
        assert_eq!(aph.stages, 1 + 22); // log₂2 + 2(w+1)
        assert_eq!(aph.sram_bits, 10 * 3 * 64 + (1 << 16) * 32);
        assert_eq!(aph.tcam_entries, 128); // 64·D
    }

    #[test]
    fn table2_topn_defaults() {
        // Defaults N=250, w=4 (det) and w=4, d=4096 (rand).
        let det = topn_det(4);
        assert_eq!(det.stages, 5);
        assert_eq!(det.alus, 5);
        assert_eq!(det.sram_bits, 5 * 64);
        let rand = topn_rand(4, 4096);
        assert_eq!(rand.stages, 4);
        assert_eq!(rand.sram_bits, 4096 * 4 * 64);
    }

    #[test]
    fn table2_join_defaults() {
        // Defaults M=4MB, H=3.
        let m_bits = 4 * 8 * 1024 * 1024;
        let bf = join_bf(m_bits, 3);
        assert_eq!(bf.stages, 2);
        assert_eq!(bf.alus, 3);
        assert_eq!(bf.sram_bits, m_bits);
        let rbf = join_rbf(m_bits, 3);
        assert_eq!(rbf.stages, 1);
        assert_eq!(rbf.alus, 1);
        assert_eq!(rbf.sram_bits, m_bits + 22 * 64); // ⌈64/3⌉ = 22 patterns
    }

    #[test]
    fn table2_having_defaults() {
        // Defaults w=1024, d=3, A=10.
        let h = having(1024, 3, 10);
        assert_eq!(h.stages, 1);
        assert_eq!(h.alus, 3);
        assert_eq!(h.sram_bits, 3 * 1024 * 64);
    }

    #[test]
    fn table2_groupby_defaults() {
        let g = group_by(8, 4096);
        assert_eq!(g.stages, 8);
        assert_eq!(g.alus, 8);
        assert_eq!(g.sram_bits, 4096 * 8 * 64);
    }

    #[test]
    fn defaults_fit_tofino() {
        let m = SwitchModel::tofino_like();
        assert!(distinct_fifo(2, 4096, m.alus_per_stage).fits(&m));
        assert!(topn_det(4).fits(&m));
        assert!(topn_rand(4, 4096).fits(&m));
        assert!(group_by(8, 4096).fits(&m));
        assert!(join_bf(4 * 8 * 1024 * 1024, 3).fits(&m));
        assert!(join_rbf(4 * 8 * 1024 * 1024, 3).fits(&m));
        assert!(having(1024, 3, m.alus_per_stage).fits(&m));
        assert!(filter(1).fits(&m));
        // SKYLINE at its Table 2 default w=10 needs 21 stages — more than
        // one 12-stage pipeline pass, as the paper notes SKYLINE is
        // stage-hungry; it fits the Tofino-2-like model.
        assert!(!skyline_sum(2, 10).fits(&m));
        assert!(skyline_sum(2, 9).fits(&SwitchModel::tofino2_like()));
    }

    #[test]
    fn usage_plus_accumulates() {
        let a = topn_det(4);
        let b = filter(1);
        let s = a.plus(b);
        assert_eq!(s.stages, a.stages + b.stages);
        assert_eq!(s.alus, a.alus + b.alus);
        assert_eq!(s.sram_bits, a.sram_bits + b.sram_bits);
    }

    #[test]
    fn sram_kb_conversion() {
        let u = ResourceUsage {
            stages: 0,
            alus: 0,
            sram_bits: 8 * 1024 * 10,
            tcam_entries: 0,
        };
        assert!((u.sram_kb() - 10.0).abs() < 1e-12);
    }
}
