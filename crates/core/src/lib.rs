//! # cheetah-core — switch pruning algorithms
//!
//! This crate implements the primary contribution of *"Cheetah: Accelerating
//! Database Queries with Switch Pruning"* (SIGMOD 2020): a family of
//! **pruning algorithms** designed to run on a programmable (PISA) switch
//! sitting between database workers and the master.
//!
//! A pruning algorithm `A_Q` for a query `Q` maps a dataset `D` to a subset
//! `A_Q(D) ⊆ D` such that running the query on the subset yields the same
//! output: `Q(A_Q(D)) = Q(D)`. Probabilistic variants relax this to
//! `Pr[Q(A_Q(D)) ≠ Q(D)] ≤ δ`. The switch never *completes* a query — it
//! only discards entries that provably (or with probability `1 − δ`) cannot
//! affect the output, and the master finishes the job on whatever survives.
//!
//! The algorithms in this crate are *reference implementations*: plain Rust,
//! structured exactly like the switch versions (row-partitioned matrices,
//! rolling minima, sketches) but without the PISA pipeline constraints. The
//! sibling crate `cheetah-pisa` re-expresses each of them as a constrained
//! switch program and differential-tests the two against each other.
//!
//! | Query | Module | Guarantee | Paper section |
//! |---|---|---|---|
//! | `WHERE` filtering | [`filter`] | deterministic | §4.1 |
//! | `DISTINCT` | [`distinct`] | det. / probabilistic (fingerprints) | §4.2, §5 |
//! | `TOP N` | [`topn`] | det. / probabilistic | §4.3, §5 |
//! | `GROUP BY` + MAX/MIN/SUM | [`groupby`] | deterministic | §4, §6 |
//! | `JOIN` | [`join`] | deterministic | §4.3 |
//! | `HAVING SUM/COUNT > c` | [`having`] | deterministic | §4.3 |
//! | `SKYLINE` | [`skyline`] | deterministic | §4.4 |
//! | multiple concurrent queries | [`multiquery`] | per-query | §6 |
//!
//! Supporting modules: [`hash`] (seedable mixing), [`fingerprint`]
//! (Theorem 4 sizing), [`params`] (Theorems 1–3 configuration maths,
//! Lambert W), [`resources`] (Table 2 switch-resource formulas), and
//! [`opt`] (unconstrained streaming baselines used as the `OPT` curves in
//! the paper's Figures 10 and 11).
//!
//! §9's extensions are implemented too: [`batch`] (multiple entries per
//! packet with same-row collision skipping) and [`multiswitch`] (a
//! leaf/root switch tree for extra aggregate resources); outer joins
//! (footnote 3) live in [`join`], the minimizing skyline (footnote 4) in
//! [`skyline`], and the MAX/MIN HAVING variant in [`having`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod decision;
pub mod distinct;
pub mod filter;
pub mod fingerprint;
pub mod groupby;
pub mod hash;
pub mod having;
pub mod join;
pub mod multiquery;
pub mod multiswitch;
pub mod opt;
pub mod params;
pub mod resources;
pub mod skyline;
pub mod topn;

pub use decision::{Decision, PruneStats, RowPruner};
pub use resources::{ResourceUsage, SwitchModel};
