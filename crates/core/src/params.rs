//! Configuration mathematics from the paper's appendices.
//!
//! The Cheetah algorithms are parametric in the matrix dimensions `(d, w)`;
//! the paper derives (Appendix C/E) how to pick them from the query
//! parameter `N`, the error budget `δ` and the switch resource limits:
//!
//! * Theorem 2/9 — matrix columns `w(d, N, δ)` for randomized TOP N;
//! * the Lambert-W optimum `d* = δ·e^{W(N·e²/δ)}` minimizing space `d·w`;
//! * Theorem 3/10 — expected unpruned count `w·d·ln(m·e/(w·d))` on
//!   random-order streams;
//! * Theorem 1/8 — DISTINCT expected pruned fraction `0.99·min(wd/(De), 1)`.
//!
//! The worked examples from the paper are pinned as unit tests: `w = 16` at
//! `(d=600, N=1000, δ=10⁻⁴)`, `w = 5` at `d = 8000`, `w = 288` at `d = 200`,
//! and the optimum `(d, w) = (481, 19)`.

use std::f64::consts::E;

/// Principal branch of the Lambert W function (`W₀`), defined by
/// `W(x)·e^{W(x)} = x` for `x ≥ -1/e`.
///
/// Newton/Halley iteration from a log-based initial guess; converges to
/// near machine precision in a handful of steps for the arguments we use
/// (which are large and positive).
pub fn lambert_w0(x: f64) -> f64 {
    assert!(x >= -1.0 / E, "lambert_w0 domain is x >= -1/e, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    // Initial guess: for large x, W(x) ≈ ln x − ln ln x; for small x, W ≈ x.
    let mut w = if x > E {
        let l = x.ln();
        l - l.ln()
    } else if x > 0.0 {
        x / (1.0 + x)
    } else {
        // −1/e ≤ x < 0: start near the series expansion around 0.
        x * (1.0 - x)
    };
    for _ in 0..64 {
        let ew = w.exp();
        let f = w * ew - x;
        // Halley's method.
        let denom = ew * (w + 1.0) - (w + 2.0) * f / (2.0 * w + 2.0);
        let next = w - f / denom;
        if !next.is_finite() {
            break;
        }
        if (next - w).abs() <= 1e-14 * next.abs().max(1.0) {
            return next;
        }
        w = next;
    }
    w
}

/// Number of matrix columns `w` for the randomized TOP N algorithm
/// (Theorem 2/9):
///
/// `w = ⌊ 1.3·ln(d/δ) / ln( (d/(N·e))·ln(d/δ) ) ⌋`
///
/// Returns `None` when the configuration is infeasible (the logarithm's
/// argument must exceed 1, i.e. `d·ln(d/δ) > N·e`).
///
/// The paper writes a ceiling here but its three worked examples (16 at
/// d=600, 5 at d=8000, 288 at d=200 for N=1000, δ=10⁻⁴) are the *floor* of
/// the expression (16.40, 5.94, 288.4); we follow the worked examples and
/// document the discrepancy. The success guarantee is monotone in `w`, so
/// callers wanting the letter of Theorem 2 can add one.
pub fn topn_columns(d: usize, n: usize, delta: f64) -> Option<usize> {
    assert!(d > 0 && n > 0, "d and n must be positive");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    let d_f = d as f64;
    let n_f = n as f64;
    let l = (d_f / delta).ln();
    let arg = d_f / (n_f * E) * l;
    if arg <= 1.0 {
        return None;
    }
    let w = 1.3 * l / arg.ln();
    Some((w.floor() as usize).max(1))
}

/// Space-and-pruning-optimal number of rows for randomized TOP N
/// (Appendix E): `d* = δ·e^{W₀(N·e²/δ)}`, rounded to the nearest integer.
///
/// Minimizing `d·w` simultaneously minimizes switch SRAM and maximizes the
/// pruning rate (Theorem 3's bound is increasing in `d·w`).
pub fn topn_optimal_rows(n: usize, delta: f64) -> usize {
    assert!(n > 0, "n must be positive");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    let x = (n as f64) * E * E / delta;
    let d = delta * lambert_w0(x).exp();
    // The paper notes the integral optimum is the formula value or one off;
    // rounding up reproduces its worked example (480.5 → 481, w = 19).
    d.ceil().max(1.0) as usize
}

/// The `(d, w)` pair produced by the optimal-`d` rule plus Theorem 2's
/// column formula. For `N=1000, δ=10⁻⁴` this is `(481, 19)` as in the paper.
pub fn topn_optimal_config(n: usize, delta: f64) -> Option<(usize, usize)> {
    let d = topn_optimal_rows(n, delta);
    topn_columns(d, n, delta).map(|w| (d, w))
}

/// Expected number of entries a randomized TOP N matrix fails to prune on a
/// random-order stream of `m` elements (Theorem 3/10):
/// `w·d·ln(m·e/(w·d))`, clamped to `m`.
pub fn topn_expected_unpruned(m: u64, d: usize, w: usize) -> f64 {
    let wd = (d as f64) * (w as f64);
    let m_f = m as f64;
    if wd <= 0.0 {
        return m_f;
    }
    if m_f <= wd {
        // Fewer elements than matrix cells: nothing needs pruning.
        return m_f;
    }
    (wd * (m_f * E / wd).ln()).min(m_f)
}

/// Expected fraction of *duplicate* entries pruned by the DISTINCT matrix
/// on a random-order stream with `distinct` distinct values (Theorem 1/8):
/// `0.99·min(w·d/(D·e), 1)`.
///
/// Valid when `D > d·ln(200·d)`; for lighter loads the true rate is higher,
/// so this is a safe lower bound there too.
pub fn distinct_expected_prune_fraction(distinct: u64, d: usize, w: usize) -> f64 {
    let wd = (d as f64) * (w as f64);
    0.99 * (wd / (distinct as f64 * E)).min(1.0)
}

/// Maximum-row-load bound `M` used by the DISTINCT fingerprint analysis
/// (Theorem 4/6): with `D` distinct values thrown into `d` rows, with
/// probability `1 − δ/2` no row receives more than `M` values.
pub fn distinct_max_row_load(distinct: u64, d: usize, delta: f64) -> f64 {
    assert!(d > 0, "d must be positive");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    let d_f = d as f64;
    let big_d = distinct as f64;
    let heavy = d_f * (2.0 * d_f / delta).ln();
    if big_d > heavy {
        // Heavy load: Chernoff with γ = e−1 gives M = e·D/d.
        E * big_d / d_f
    } else if big_d >= d_f * (1.0 / delta).ln() / E {
        // Medium load.
        E * (2.0 * d_f / delta).ln()
    } else {
        // Light load: the TOP-N-style bound with N → D, δ → δ/2.
        let l = (2.0 * d_f / delta).ln();
        let arg = d_f / (big_d * E) * l;
        if arg <= 1.0 {
            // Fall back to the medium-load bound, which always dominates.
            E * l
        } else {
            1.3 * l / arg.ln()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn lambert_w_identity() {
        for &x in &[0.001, 0.5, 1.0, E, 10.0, 1e3, 1e6, 7.389e7, 1e12] {
            let w = lambert_w0(x);
            assert!(
                close(w * w.exp(), x, 1e-9),
                "W({x}) = {w}, W·e^W = {}",
                w * w.exp()
            );
        }
    }

    #[test]
    fn lambert_w_known_values() {
        assert!(close(lambert_w0(0.0), 0.0, 1e-12));
        assert!(close(lambert_w0(E), 1.0, 1e-9));
        assert!(close(lambert_w0(2.0 * E * E), 2.0, 1e-9));
    }

    #[test]
    #[should_panic(expected = "domain")]
    fn lambert_w_out_of_domain_panics() {
        lambert_w0(-1.0);
    }

    // The paper's worked examples for TOP 1000 with 99.99% success (§5).
    #[test]
    fn paper_example_w_at_d600() {
        assert_eq!(topn_columns(600, 1000, 1e-4), Some(16));
    }

    #[test]
    fn paper_example_w_at_d8000() {
        assert_eq!(topn_columns(8000, 1000, 1e-4), Some(5));
    }

    #[test]
    fn paper_example_w_at_d200() {
        assert_eq!(topn_columns(200, 1000, 1e-4), Some(288));
    }

    #[test]
    fn paper_example_optimal_config() {
        let (d, w) = topn_optimal_config(1000, 1e-4).expect("feasible");
        assert_eq!(d, 481, "paper: d = 481 rows");
        assert_eq!(w, 19, "paper: w = 19 columns");
    }

    #[test]
    fn w_decreases_with_d() {
        // Theorem 9: for fixed δ, w is monotonically decreasing in d.
        let mut last = usize::MAX;
        for d in [300, 600, 1200, 2400, 4800, 9600] {
            let w = topn_columns(d, 1000, 1e-4).expect("feasible");
            assert!(w <= last, "w must not increase with d");
            last = w;
        }
    }

    #[test]
    fn infeasible_config_is_none() {
        // Tiny d: the log argument drops below 1.
        assert_eq!(topn_columns(10, 1_000_000, 1e-4), None);
    }

    #[test]
    fn paper_example_topn_pruning_bound() {
        // d=600, w=16, m=8M: ≥99% pruned.
        let unpruned = topn_expected_unpruned(8_000_000, 600, 16);
        let frac = unpruned / 8_000_000.0;
        assert!(frac < 0.01, "paper: ≥99% pruned, got unpruned {frac}");
        // m=100M: >99.9% pruned.
        let unpruned = topn_expected_unpruned(100_000_000, 600, 16);
        assert!(unpruned / 1e8 < 0.001);
    }

    #[test]
    fn topn_bound_saturates_below_matrix_size() {
        assert_eq!(topn_expected_unpruned(100, 600, 16), 100.0);
    }

    #[test]
    fn paper_example_distinct_bound() {
        // D=15000, d=1000, w=24 ⇒ expected ≈58% of duplicates pruned.
        let f = distinct_expected_prune_fraction(15_000, 1000, 24);
        assert!((f - 0.58).abs() < 0.01, "paper quotes 58%, computed {f:.4}");
    }

    #[test]
    fn distinct_bound_caps_at_99_percent() {
        let f = distinct_expected_prune_fraction(10, 1000, 24);
        assert!(close(f, 0.99, 1e-12));
    }

    #[test]
    fn max_row_load_heavy_case() {
        // D=500M, d=1000 is deep in the heavy case: M = e·D/d.
        let m = distinct_max_row_load(500_000_000, 1000, 1e-4);
        assert!(close(m, E * 500_000_000.0 / 1000.0, 1e-12));
    }

    #[test]
    fn max_row_load_monotone_in_distinct_count() {
        let mut last = 0.0f64;
        for &big_d in &[100u64, 1_000, 10_000, 100_000, 1_000_000, 100_000_000] {
            let m = distinct_max_row_load(big_d, 1000, 1e-4);
            assert!(
                m >= last - 1e-9,
                "row-load bound should not shrink as D grows: D={big_d} gave {m} < {last}"
            );
            last = m;
        }
    }
}
