//! Fingerprints for wide or multi-column keys (§5, Example 8).
//!
//! Switches parse a bounded number of bits per packet, so DISTINCT / JOIN /
//! GROUP BY queries over wide or multi-column keys cannot ship the raw key.
//! The CWorker instead sends a short hash — a *fingerprint*. Collisions are
//! harmless for JOIN (they only lower the pruning rate) but harmful for
//! DISTINCT (a collision can prune a never-seen value). Theorem 4 sizes the
//! fingerprint so that, with probability `1 − δ`, no two distinct values
//! that share a matrix *row* share a fingerprint — which is all DISTINCT
//! correctness needs.

use crate::hash::HashFn;
use crate::params::distinct_max_row_load;

/// Computes fixed-width fingerprints of switch entries.
///
/// Row selection and fingerprinting must use *independent* hash functions:
/// Theorem 4's analysis charges a collision only when two distinct values
/// land in the same row, which requires the row index not be a function of
/// the fingerprint.
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    hash: HashFn,
    bits: u32,
}

impl Fingerprinter {
    /// A fingerprinter producing `bits`-wide fingerprints (1..=64).
    pub fn new(seed: u64, bits: u32) -> Self {
        assert!((1..=64).contains(&bits), "fingerprint width must be 1..=64");
        Fingerprinter {
            hash: HashFn::new(seed),
            bits,
        }
    }

    /// Fingerprint width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Fingerprint of a single 64-bit key.
    #[inline]
    pub fn fp(&self, key: u64) -> u64 {
        self.mask(self.hash.hash(key))
    }

    /// Fingerprint of a multi-column key.
    pub fn fp_words(&self, words: &[u64]) -> u64 {
        self.mask(self.hash.hash_words(words))
    }

    /// Fingerprint of a variable-width (string) key.
    pub fn fp_bytes(&self, bytes: &[u8]) -> u64 {
        self.mask(self.hash.hash_bytes(bytes))
    }

    #[inline]
    fn mask(&self, h: u64) -> u64 {
        if self.bits == 64 {
            h
        } else {
            h & ((1u64 << self.bits) - 1)
        }
    }
}

/// Fingerprint width from Theorem 4/6: `f = ⌈log₂(d·M²/δ)⌉` bits, where `M`
/// is the maximum-row-load bound for `D` distinct values in `d` rows.
///
/// With `d = 1000` and `δ = 0.01%`, 64-bit fingerprints support 500M
/// distinct values regardless of the total data size — the paper's example,
/// pinned in the tests. The result does not depend on the matrix width `w`.
pub fn fingerprint_bits(distinct: u64, d: usize, delta: f64) -> u32 {
    let m = distinct_max_row_load(distinct, d, delta);
    let f = ((d as f64) * m * m / delta).log2().ceil();
    // Clamp into the representable range; wider than 64 means "infeasible
    // with 64-bit fingerprints", which we surface as 65 for callers to check.
    if f <= 1.0 {
        1
    } else if f > 64.0 {
        65
    } else {
        f as u32
    }
}

/// Largest number of distinct values supportable with `bits`-wide
/// fingerprints at `d` rows and failure budget `δ` (inverse of
/// [`fingerprint_bits`], found by binary search).
pub fn max_supported_distinct(bits: u32, d: usize, delta: f64) -> u64 {
    let mut lo = 1u64;
    let mut hi = u64::MAX / 4;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if fingerprint_bits(mid, d, delta) <= bits {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo.saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp_is_deterministic_and_masked() {
        let f = Fingerprinter::new(1, 16);
        assert_eq!(f.fp(12345), f.fp(12345));
        assert!(f.fp(12345) < (1 << 16));
        let f64b = Fingerprinter::new(1, 64);
        assert_eq!(f64b.fp(7), f64b.fp(7));
    }

    #[test]
    fn fp_words_and_bytes() {
        let f = Fingerprinter::new(2, 32);
        assert!(f.fp_words(&[1, 2, 3]) < (1 << 32));
        assert!(f.fp_bytes(b"userAgent=Mozilla") < (1 << 32));
        assert_ne!(f.fp_words(&[1, 2]), f.fp_words(&[2, 1]));
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        Fingerprinter::new(0, 0);
    }

    #[test]
    fn paper_example_500m_distinct_fit_in_64_bits() {
        // d=1000, δ=0.01%: the paper says 64-bit fingerprints support "up
        // to 500M" distinct values. The exact 64-bit boundary of Theorem 4
        // is D = 4.9965×10⁸ — i.e. 500M to three significant figures.
        let bits = fingerprint_bits(499_000_000, 1000, 1e-4);
        assert!(
            bits <= 64,
            "paper: ~500M distinct @ d=1000, δ=1e-4 needs ≤64 bits, got {bits}"
        );
        // Just past the boundary it no longer fits.
        let bits = fingerprint_bits(510_000_000, 1000, 1e-4);
        assert!(bits > 64);
    }

    #[test]
    fn width_monotone_in_distinct() {
        let mut last = 0;
        for &d_count in &[1_000u64, 100_000, 10_000_000, 1_000_000_000] {
            let b = fingerprint_bits(d_count, 1000, 1e-4);
            assert!(b >= last);
            last = b;
        }
    }

    #[test]
    fn width_decreases_with_more_rows() {
        let few_rows = fingerprint_bits(10_000_000, 100, 1e-4);
        let many_rows = fingerprint_bits(10_000_000, 100_000, 1e-4);
        assert!(
            many_rows <= few_rows,
            "more rows should not need wider fingerprints ({many_rows} vs {few_rows})"
        );
    }

    #[test]
    fn max_supported_is_inverse() {
        let d = 1000;
        let delta = 1e-4;
        let cap = max_supported_distinct(64, d, delta);
        // The paper's "up to 500M" example: the true boundary is ≈4.997e8.
        assert!(
            (490_000_000..510_000_000).contains(&cap),
            "cap {cap} should be ~500M"
        );
        assert!(fingerprint_bits(cap, d, delta) <= 64);
        assert!(fingerprint_bits(cap + cap / 2, d, delta) > 64);
    }

    #[test]
    fn collision_rate_matches_width() {
        // Empirical: 12-bit fingerprints over 4096 values collide often;
        // 64-bit ones should not collide at this scale.
        let f12 = Fingerprinter::new(5, 12);
        let f64b = Fingerprinter::new(5, 64);
        let mut seen12 = std::collections::HashSet::new();
        let mut seen64 = std::collections::HashSet::new();
        let mut col12 = 0;
        let mut col64 = 0;
        for x in 0..4096u64 {
            if !seen12.insert(f12.fp(x)) {
                col12 += 1;
            }
            if !seen64.insert(f64b.fp(x)) {
                col64 += 1;
            }
        }
        assert!(col12 > 100, "12-bit fps should collide heavily: {col12}");
        assert_eq!(col64, 0, "64-bit fps should not collide at 4K scale");
    }
}
