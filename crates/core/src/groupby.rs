//! GROUP BY pruning (§4 and §6; Figures 10d/11d; Appendix A.2.4).
//!
//! Two flavours appear in the paper's evaluation:
//!
//! * **MAX / MIN aggregates** (Appendix B query 5: `SELECT userAgent,
//!   MAX(adRevenue) … GROUP BY userAgent`) — pure pruning. The switch keeps
//!   a `d × w` matrix of `(key, best)` cells; an entry whose value does not
//!   improve its key's cached best cannot affect the output and is pruned.
//!   First occurrences and improvements are forwarded (after updating the
//!   cache), so the master always receives every key's true extremum.
//! * **SUM / COUNT aggregates** (Big Data query B, discussed in §6) — an
//!   entry's value always contributes, so dropping it outright would be
//!   wrong. Following §6 ("we use the remaining stage memory … to store SUM
//!   results"), [`GroupBySumPruner`] folds values into per-key accumulators
//!   in switch registers; hits are pruned, and an evicted `(key, partial)`
//!   pair rides out on the evicting packet (the same displaced-value trick
//!   SKYLINE uses), so no drain pass is needed for evictions. The residual
//!   accumulators are flushed when the FIN arrives ([`GroupBySumPruner::drain`]),
//!   and the master sums partials per key — yielding exact totals.

use crate::decision::{Decision, RowPruner};
use crate::hash::HashFn;
use crate::resources::{table2, ResourceUsage};

/// Which extremum a [`GroupByPruner`] maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Extremum {
    /// Keep entries that raise their key's maximum.
    Max,
    /// Keep entries that lower their key's minimum.
    Min,
}

impl Extremum {
    #[inline]
    fn improves(self, candidate: u64, incumbent: u64) -> bool {
        match self {
            Extremum::Max => candidate > incumbent,
            Extremum::Min => candidate < incumbent,
        }
    }
}

/// Deterministic GROUP BY MAX/MIN pruner over a `d × w` matrix of
/// `(key, best)` cells with round-robin (FIFO) replacement.
///
/// The replacement is deliberately FIFO rather than LRU: a hit updates a
/// single value cell and a miss writes one `(key, best)` pair plus the
/// row cursor — exactly the bounded write-set a single wide register
/// access supports on the switch (see `cheetah-pisa`).
#[derive(Debug, Clone)]
pub struct GroupByPruner {
    d: usize,
    w: usize,
    agg: Extremum,
    keys: Vec<u64>,
    bests: Vec<u64>,
    lens: Vec<u16>,
    cursors: Vec<u16>,
    row_hash: HashFn,
}

impl GroupByPruner {
    /// Create a pruner with `d` rows and `w` cells per row.
    /// Table 2 default: `w = 8` (with `d` sized by per-stage SRAM).
    pub fn new(d: usize, w: usize, agg: Extremum, seed: u64) -> Self {
        assert!(d > 0 && w > 0 && w <= u16::MAX as usize);
        GroupByPruner {
            d,
            w,
            agg,
            keys: vec![0; d * w],
            bests: vec![0; d * w],
            lens: vec![0; d],
            cursors: vec![0; d],
            row_hash: HashFn::new(seed),
        }
    }

    /// Process one `(key, value)` entry.
    ///
    /// Forwarded iff the value improves (or first-establishes) the cached
    /// extremum for its key; the cache is updated on forward, so the entry
    /// achieving the true extremum is always forwarded.
    pub fn process(&mut self, key: u64, value: u64) -> Decision {
        let r = self.row_hash.bucket(key, self.d);
        let base = r * self.w;
        let len = self.lens[r] as usize;
        if let Some(i) = self.keys[base..base + len].iter().position(|&k| k == key) {
            if self.agg.improves(value, self.bests[base + i]) {
                self.bests[base + i] = value;
                Decision::Forward
            } else {
                Decision::Prune
            }
        } else if len < self.w {
            self.keys[base + len] = key;
            self.bests[base + len] = value;
            self.lens[r] = (len + 1) as u16;
            Decision::Forward
        } else {
            // Row full: overwrite at the round-robin cursor.
            let cur = self.cursors[r] as usize;
            self.keys[base + cur] = key;
            self.bests[base + cur] = value;
            self.cursors[r] = ((cur + 1) % self.w) as u16;
            Decision::Forward
        }
    }

    /// Table 2 resources: `w` stages, `w` ALUs, `d·w×64b` SRAM.
    pub fn resources(&self) -> ResourceUsage {
        table2::group_by(self.w as u32, self.d as u64)
    }
}

impl RowPruner for GroupByPruner {
    fn process_row(&mut self, row: &[u64]) -> Decision {
        self.process(row[0], row[1])
    }

    fn process_block(&mut self, cols: &[&[u64]], out: &mut [Decision]) {
        // Read the key/value lanes directly; no per-row gather.
        for ((d, &k), &v) in out.iter_mut().zip(cols[0]).zip(cols[1]) {
            *d = self.process(k, v);
        }
    }

    fn reset(&mut self) {
        self.lens.fill(0);
        self.cursors.fill(0);
    }

    fn name(&self) -> &'static str {
        "groupby"
    }
}

/// [`crate::batch::BatchAccess`] adapter for §9 multi-entry packets.
#[derive(Debug, Clone)]
pub struct GroupByBatchAccess {
    inner: GroupByPruner,
}

impl GroupByBatchAccess {
    /// Wrap a GROUP BY pruner for batching.
    pub fn new(inner: GroupByPruner) -> Self {
        GroupByBatchAccess { inner }
    }
}

impl crate::batch::BatchAccess for GroupByBatchAccess {
    fn row_of(&mut self, entry: &[u64]) -> usize {
        self.inner.row_hash.bucket(entry[0], self.inner.d)
    }

    fn process_one(&mut self, entry: &[u64]) -> Decision {
        self.inner.process(entry[0], entry[1])
    }
}

/// What the switch emits for one entry under SUM/COUNT partial aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SumAction {
    /// Entry absorbed into a register; packet dropped.
    Absorb,
    /// Cache miss with a full row: the evicted `(key, partial_sum)` pair
    /// replaces the packet payload and is forwarded to the master.
    EvictAndForward {
        /// Key of the evicted accumulator.
        key: u64,
        /// Its partial sum, to be merged at the master.
        partial: u64,
    },
    /// Entry started a fresh accumulator; packet dropped.
    Start,
}

/// GROUP BY SUM/COUNT partial aggregation in switch registers (§6).
///
/// Unlike the extremum pruner this is not a pure filter: the switch holds
/// partial sums, so correctness requires [`GroupBySumPruner::drain`] once
/// the workers' FINs arrive. The master adds up all `(key, partial)` pairs
/// it receives — evictions plus the final drain — giving exact group sums.
#[derive(Debug, Clone)]
pub struct GroupBySumPruner {
    d: usize,
    w: usize,
    keys: Vec<u64>,
    sums: Vec<u64>,
    lens: Vec<u16>,
    cursors: Vec<u16>,
    row_hash: HashFn,
}

impl GroupBySumPruner {
    /// Create an accumulator matrix with `d` rows and `w` cells per row.
    pub fn new(d: usize, w: usize, seed: u64) -> Self {
        assert!(d > 0 && w > 0 && w <= u16::MAX as usize);
        GroupBySumPruner {
            d,
            w,
            keys: vec![0; d * w],
            sums: vec![0; d * w],
            lens: vec![0; d],
            cursors: vec![0; d],
            row_hash: HashFn::new(seed),
        }
    }

    /// Process one `(key, value)` entry. For COUNT, pass `value = 1`.
    pub fn process(&mut self, key: u64, value: u64) -> SumAction {
        let r = self.row_hash.bucket(key, self.d);
        let base = r * self.w;
        let len = self.lens[r] as usize;
        if let Some(i) = self.keys[base..base + len].iter().position(|&k| k == key) {
            self.sums[base + i] = self.sums[base + i].saturating_add(value);
            return SumAction::Absorb;
        }
        if len < self.w {
            self.keys[base + len] = key;
            self.sums[base + len] = value;
            self.lens[r] = (len + 1) as u16;
            return SumAction::Start;
        }
        // Row full: overwrite at the round-robin cursor, evicting the old
        // accumulator onto the packet.
        let cur = self.cursors[r] as usize;
        let evicted_key = self.keys[base + cur];
        let evicted_sum = self.sums[base + cur];
        self.keys[base + cur] = key;
        self.sums[base + cur] = value;
        self.cursors[r] = ((cur + 1) % self.w) as u16;
        SumAction::EvictAndForward {
            key: evicted_key,
            partial: evicted_sum,
        }
    }

    /// Batched variant of [`GroupBySumPruner::process`] over key/value
    /// lanes: `out[i]` is `Forward` iff entry `i` evicted an accumulator
    /// (the eviction rides out via `on_evict(key, partial)`), `Prune` for
    /// absorbed/started entries — the same decision stream the per-entry
    /// path produces.
    pub fn process_block(
        &mut self,
        keys: &[u64],
        vals: &[u64],
        out: &mut [Decision],
        mut on_evict: impl FnMut(u64, u64),
    ) {
        for ((d, &k), &v) in out.iter_mut().zip(keys).zip(vals) {
            *d = match self.process(k, v) {
                SumAction::EvictAndForward { key, partial } => {
                    on_evict(key, partial);
                    Decision::Forward
                }
                SumAction::Absorb | SumAction::Start => Decision::Prune,
            };
        }
    }

    /// Clear all accumulators without emitting them — the control-plane
    /// reinstall before a fresh query run (use [`GroupBySumPruner::drain`]
    /// at FIN when the residual partials must reach the master).
    pub fn reset(&mut self) {
        self.lens.fill(0);
        self.cursors.fill(0);
    }

    /// Merge another accumulator matrix into this one: every residual
    /// `(key, partial)` of `other` is re-aggregated through this matrix
    /// exactly like a streamed entry, with displaced accumulators riding
    /// out through `on_evict` — the same packet-riding eviction discipline
    /// the switch uses (§6), now applied at the cross-shard combine layer.
    /// `other` is drained empty; exactness is preserved because every
    /// partial either lands in a cell of `self` or reaches `on_evict`.
    pub fn merge(&mut self, other: &mut GroupBySumPruner, mut on_evict: impl FnMut(u64, u64)) {
        for (key, partial) in other.drain() {
            if let SumAction::EvictAndForward { key, partial } = self.process(key, partial) {
                on_evict(key, partial);
            }
        }
    }

    /// Flush all residual accumulators (the FIN-triggered final pass).
    pub fn drain(&mut self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for r in 0..self.d {
            let base = r * self.w;
            let len = self.lens[r] as usize;
            for i in 0..len {
                out.push((self.keys[base + i], self.sums[base + i]));
            }
        }
        self.reset();
        out
    }

    /// Table 2 resources: same matrix shape as GROUP BY, with two 64-bit
    /// words (key + sum) per cell.
    pub fn resources(&self) -> ResourceUsage {
        let base = table2::group_by(self.w as u32, self.d as u64);
        ResourceUsage {
            sram_bits: base.sram_bits * 2,
            ..base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;

    #[test]
    fn max_entry_always_forwarded() {
        let mut rng = StdRng::seed_from_u64(1);
        let entries: Vec<(u64, u64)> = (0..50_000)
            .map(|_| (rng.gen_range(0..300), rng.gen_range(0..1_000_000)))
            .collect();
        let mut p = GroupByPruner::new(64, 4, Extremum::Max, 0);
        let mut master: HashMap<u64, u64> = HashMap::new();
        for &(k, v) in &entries {
            if p.process(k, v).is_forward() {
                let e = master.entry(k).or_insert(0);
                *e = (*e).max(v);
            }
        }
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &(k, v) in &entries {
            let e = truth.entry(k).or_insert(0);
            *e = (*e).max(v);
        }
        assert_eq!(master, truth, "master-side MAX must equal ground truth");
    }

    #[test]
    fn min_entry_always_forwarded() {
        let mut rng = StdRng::seed_from_u64(2);
        let entries: Vec<(u64, u64)> = (0..20_000)
            .map(|_| (rng.gen_range(0..100), rng.gen_range(0..1_000_000)))
            .collect();
        let mut p = GroupByPruner::new(16, 2, Extremum::Min, 0);
        let mut master: HashMap<u64, u64> = HashMap::new();
        for &(k, v) in &entries {
            if p.process(k, v).is_forward() {
                let e = master.entry(k).or_insert(u64::MAX);
                *e = (*e).min(v);
            }
        }
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &(k, v) in &entries {
            let e = truth.entry(k).or_insert(u64::MAX);
            *e = (*e).min(v);
        }
        assert_eq!(master, truth);
    }

    #[test]
    fn non_improving_duplicates_pruned() {
        let mut p = GroupByPruner::new(4, 2, Extremum::Max, 0);
        assert!(p.process(1, 100).is_forward());
        assert!(p.process(1, 50).is_prune());
        assert!(p.process(1, 100).is_prune(), "ties do not improve");
        assert!(p.process(1, 101).is_forward());
    }

    #[test]
    fn eviction_costs_pruning_not_correctness() {
        // Single row, w=1: key 2 evicts key 1; key 1's return is forwarded
        // even though it does not improve — harmless for MAX.
        let mut p = GroupByPruner::new(1, 1, Extremum::Max, 0);
        assert!(p.process(1, 100).is_forward());
        assert!(p.process(2, 10).is_forward()); // evicts key 1
        assert!(p.process(1, 5).is_forward()); // re-inserted, forwarded
    }

    #[test]
    fn sum_pruner_exact_totals() {
        let mut rng = StdRng::seed_from_u64(3);
        let entries: Vec<(u64, u64)> = (0..30_000)
            .map(|_| (rng.gen_range(0..500), rng.gen_range(0..1000)))
            .collect();
        let mut p = GroupBySumPruner::new(32, 4, 0);
        let mut master: HashMap<u64, u64> = HashMap::new();
        for &(k, v) in &entries {
            if let SumAction::EvictAndForward { key, partial } = p.process(k, v) {
                *master.entry(key).or_insert(0) += partial;
            }
        }
        for (key, partial) in p.drain() {
            *master.entry(key).or_insert(0) += partial;
        }
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &(k, v) in &entries {
            *truth.entry(k).or_insert(0) += v;
        }
        assert_eq!(master, truth, "partial aggregation must sum exactly");
    }

    #[test]
    fn sum_pruner_absorbs_hot_keys() {
        let mut p = GroupBySumPruner::new(8, 2, 0);
        assert_eq!(p.process(7, 5), SumAction::Start);
        for _ in 0..100 {
            assert_eq!(p.process(7, 5), SumAction::Absorb);
        }
        let drained = p.drain();
        assert_eq!(drained, vec![(7, 505)]);
    }

    #[test]
    fn merging_shard_registers_preserves_exact_totals() {
        // Shard a stream over four starved matrices, then merge them into
        // one (collecting merge-time evictions): the combined totals must
        // equal ground truth exactly, however much eviction churn happens.
        let mut rng = StdRng::seed_from_u64(17);
        let entries: Vec<(u64, u64)> = (0..40_000)
            .map(|_| (rng.gen_range(0..300), rng.gen_range(0..100)))
            .collect();
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut master: HashMap<u64, u64> = HashMap::new();
        let mut shards: Vec<GroupBySumPruner> =
            (0..4).map(|_| GroupBySumPruner::new(4, 2, 5)).collect();
        for (i, &(k, v)) in entries.iter().enumerate() {
            *truth.entry(k).or_insert(0) += v;
            if let SumAction::EvictAndForward { key, partial } = shards[i % 4].process(k, v) {
                *master.entry(key).or_insert(0) += partial;
            }
        }
        let (first, rest) = shards.split_first_mut().unwrap();
        for shard in rest {
            first.merge(shard, |key, partial| {
                *master.entry(key).or_insert(0) += partial;
            });
            assert!(shard.drain().is_empty(), "merge must drain the source");
        }
        for (key, partial) in first.drain() {
            *master.entry(key).or_insert(0) += partial;
        }
        assert_eq!(master, truth, "merged registers must sum exactly");
    }

    #[test]
    fn drain_empties_state() {
        let mut p = GroupBySumPruner::new(8, 2, 0);
        p.process(1, 1);
        p.process(2, 2);
        assert_eq!(p.drain().len(), 2);
        assert!(p.drain().is_empty());
    }

    #[test]
    fn sum_reset_discards_residuals() {
        let mut p = GroupBySumPruner::new(8, 2, 0);
        p.process(1, 10);
        p.process(2, 20);
        p.reset();
        assert!(p.drain().is_empty(), "reset drops partials unemitted");
        // Fresh accumulation starts from zero, not the stale cells.
        p.process(1, 5);
        assert_eq!(p.drain(), vec![(1, 5)]);
    }

    #[test]
    fn count_via_value_one() {
        let mut p = GroupBySumPruner::new(8, 2, 0);
        for _ in 0..42 {
            p.process(9, 1);
        }
        assert_eq!(p.drain(), vec![(9, 42)]);
    }

    #[test]
    fn resources_match_table2() {
        let p = GroupByPruner::new(4096, 8, Extremum::Max, 0);
        let r = p.resources();
        assert_eq!(r.stages, 8);
        assert_eq!(r.alus, 8);
        assert_eq!(r.sram_bits, 4096 * 8 * 64);
    }

    #[test]
    fn reset_and_name() {
        let mut p = GroupByPruner::new(4, 2, Extremum::Max, 0);
        assert_eq!(p.name(), "groupby");
        assert!(p.process_row(&[1, 10]).is_forward());
        assert!(p.process_row(&[1, 5]).is_prune());
        p.reset();
        assert!(p.process_row(&[1, 5]).is_forward());
    }
}
