//! Seedable 64-bit hashing, modelled on the hash units of a PISA switch.
//!
//! Tofino-class switches expose a small number of hardware hash engines
//! (CRC-based) that programs use for row selection, Bloom-filter indices and
//! fingerprinting. We model them as a family of independent mixing functions
//! seeded by the control plane. The mixer is the SplitMix64 finalizer, which
//! has full avalanche — adequate for the balls-and-bins analyses the paper
//! relies on (Appendix C/E) and dependency-free.

/// SplitMix64 finalizer: a fast, full-avalanche 64-bit mixer.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// One seeded hash function, standing in for a switch hash engine.
///
/// Different seeds yield (empirically) independent functions; the Cheetah
/// algorithms use one engine for row selection, separate engines per
/// Bloom-filter/Count-Min row, and another for fingerprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashFn {
    seed: u64,
}

impl HashFn {
    /// Create a hash function with the given control-plane seed.
    pub fn new(seed: u64) -> Self {
        // Pre-mix the seed so that seeds 0,1,2,... are far apart.
        HashFn {
            seed: mix64(seed ^ 0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Hash a 64-bit value.
    #[inline]
    pub fn hash(&self, x: u64) -> u64 {
        mix64(x ^ self.seed)
    }

    /// Hash a multi-word value (e.g. a multi-column key) by chaining.
    pub fn hash_words(&self, words: &[u64]) -> u64 {
        let mut acc = self.seed;
        for &w in words {
            acc = mix64(acc ^ w).rotate_left(17);
        }
        mix64(acc)
    }

    /// Hash a byte string (variable-width columns) — FNV-1a folding into
    /// 64-bit lanes, finished with the mixer.
    pub fn hash_bytes(&self, data: &[u8]) -> u64 {
        let mut acc: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed;
        for &b in data {
            acc ^= u64::from(b);
            acc = acc.wrapping_mul(0x0000_0100_0000_01b3);
        }
        mix64(acc)
    }

    /// Map a value uniformly into `0..n` (the matrix-row selector).
    ///
    /// Uses the multiply-shift range reduction, which is unbiased enough for
    /// our purposes and avoids the slow modulo on the hot path.
    #[inline]
    pub fn bucket(&self, x: u64, n: usize) -> usize {
        debug_assert!(n > 0, "bucket count must be positive");
        ((u128::from(self.hash(x)) * n as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_nontrivial() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), 42);
        assert_ne!(mix64(0), mix64(1));
    }

    #[test]
    fn different_seeds_differ() {
        let a = HashFn::new(0);
        let b = HashFn::new(1);
        let mut same = 0;
        for x in 0..1000u64 {
            if a.hash(x) == b.hash(x) {
                same += 1;
            }
        }
        assert_eq!(same, 0, "two seeds should behave independently");
    }

    #[test]
    fn bucket_in_range_and_roughly_uniform() {
        let h = HashFn::new(7);
        let n = 10;
        let mut counts = vec![0u32; n];
        for x in 0..10_000u64 {
            let b = h.bucket(x, n);
            assert!(b < n);
            counts[b] += 1;
        }
        // Each bucket expects ~1000; allow generous slack.
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed bucket count {c}");
        }
    }

    #[test]
    fn hash_words_order_sensitive() {
        let h = HashFn::new(3);
        assert_ne!(h.hash_words(&[1, 2]), h.hash_words(&[2, 1]));
        assert_eq!(h.hash_words(&[1, 2]), h.hash_words(&[1, 2]));
    }

    #[test]
    fn hash_bytes_matches_length() {
        let h = HashFn::new(9);
        assert_ne!(h.hash_bytes(b"abc"), h.hash_bytes(b"abcd"));
        assert_eq!(h.hash_bytes(b"abc"), h.hash_bytes(b"abc"));
    }

    #[test]
    fn bucket_single_row() {
        let h = HashFn::new(11);
        for x in 0..100 {
            assert_eq!(h.bucket(x, 1), 0);
        }
    }
}
