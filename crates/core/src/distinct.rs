//! DISTINCT pruning (§4.2, Example 2; probabilistic variant §5, Example 8).
//!
//! The switch keeps a `d × w` matrix of small caches. An incoming value is
//! hashed to one of `d` rows and compared against the `w` values cached
//! there: a hit means the value has certainly been forwarded before, so the
//! packet is pruned; a miss inserts the value and forwards the packet. The
//! structure is the *opposite* of a Bloom filter: false negatives (misses on
//! seen values) only cost pruning rate, while false positives are impossible
//! — exactly the one-sided error DISTINCT needs, since the master can drop
//! surviving duplicates but cannot resurrect pruned values.
//!
//! Two replacement policies are modelled, matching Table 2's two rows:
//!
//! * **LRU** — the hardware performs a rolling replacement across `w`
//!   pipeline stages (new value into stage 1, displaced value into stage 2,
//!   …). A hit at stage `i` stops the roll there, which *is* move-to-front;
//!   costs one stage per column.
//! * **FIFO** — a per-row round-robin pointer; all `w` cells can share a
//!   stage if same-stage ALUs can read the same memory (the `*` footnote in
//!   Table 2), so it needs only `⌈w/A⌉` stages.
//!
//! For wide/multi-column keys the CWorker sends a fingerprint instead of the
//! value ([`crate::fingerprint`]); collisions can then prune a novel value,
//! which is the probabilistic guarantee of Theorem 4.

use crate::decision::{Decision, RowPruner};
use crate::fingerprint::Fingerprinter;
use crate::hash::HashFn;
use crate::resources::{ResourceUsage, SwitchModel};

/// Cache replacement policy for [`CacheMatrix`] rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Rolling replacement = move-to-front on hit (one stage per column).
    Lru,
    /// Round-robin overwrite, no reordering on hit (`⌈w/A⌉` stages).
    Fifo,
}

/// The `d × w` cache matrix at the heart of DISTINCT pruning.
///
/// Stores raw 64-bit values (or fingerprints — the matrix does not care).
/// `process` returns [`Decision::Prune`] iff the value is currently cached
/// in its row, guaranteeing no false positives: a pruned value was
/// necessarily inserted (and therefore forwarded) earlier.
#[derive(Debug, Clone)]
pub struct CacheMatrix {
    d: usize,
    w: usize,
    policy: EvictionPolicy,
    /// Flattened `d × w` cell storage; row `r` occupies `r*w .. r*w+len[r]`.
    cells: Vec<u64>,
    /// Number of valid cells per row (rows fill from the front).
    lens: Vec<u16>,
    /// FIFO replacement cursor per row (unused under LRU).
    cursors: Vec<u16>,
    row_hash: HashFn,
}

impl CacheMatrix {
    /// Create a matrix with `d` rows and `w` columns under `policy`.
    ///
    /// The paper's default configuration is `w = 2, d = 4096` (Table 2).
    pub fn new(d: usize, w: usize, policy: EvictionPolicy, seed: u64) -> Self {
        assert!(d > 0, "need at least one row");
        assert!(w > 0 && w <= u16::MAX as usize, "invalid column count {w}");
        CacheMatrix {
            d,
            w,
            policy,
            cells: vec![0; d * w],
            lens: vec![0; d],
            cursors: vec![0; d],
            row_hash: HashFn::new(seed),
        }
    }

    /// Number of rows `d`.
    pub fn rows(&self) -> usize {
        self.d
    }

    /// Number of columns `w`.
    pub fn columns(&self) -> usize {
        self.w
    }

    /// Process one value: prune on a cache hit, insert-and-forward on miss.
    pub fn process(&mut self, value: u64) -> Decision {
        let r = self.row_hash.bucket(value, self.d);
        self.process_in_row(r, value)
    }

    /// Process a value whose row was chosen by the caller (used by the
    /// fingerprint variant, where the row comes from an independent hash of
    /// the original key, not of the fingerprint — see Theorem 4).
    pub fn process_in_row(&mut self, row: usize, value: u64) -> Decision {
        debug_assert!(row < self.d);
        let base = row * self.w;
        let len = self.lens[row] as usize;
        let hit = self.cells[base..base + len]
            .iter()
            .position(|&c| c == value);
        match hit {
            Some(i) => {
                if self.policy == EvictionPolicy::Lru && i > 0 {
                    // Move-to-front: the hardware rolling swap ends at the
                    // matching stage, leaving the hit value in stage 1.
                    self.cells[base..=base + i].rotate_right(1);
                }
                Decision::Prune
            }
            None => {
                match self.policy {
                    EvictionPolicy::Lru => {
                        let new_len = (len + 1).min(self.w);
                        // Shift right, dropping the least-recent value.
                        self.cells[base..base + new_len].rotate_right(1);
                        self.cells[base] = value;
                        self.lens[row] = new_len as u16;
                    }
                    EvictionPolicy::Fifo => {
                        if len < self.w {
                            self.cells[base + len] = value;
                            self.lens[row] = (len + 1) as u16;
                        } else {
                            let cur = self.cursors[row] as usize;
                            self.cells[base + cur] = value;
                            self.cursors[row] = ((cur + 1) % self.w) as u16;
                        }
                    }
                }
                Decision::Forward
            }
        }
    }

    /// Forget everything (control-plane table clear).
    pub fn clear(&mut self) {
        self.lens.fill(0);
        self.cursors.fill(0);
    }

    /// Switch resources consumed, per Table 2.
    pub fn resources(&self, model: &SwitchModel) -> ResourceUsage {
        match self.policy {
            EvictionPolicy::Fifo => ResourceUsage {
                stages: (self.w as u32).div_ceil(model.alus_per_stage),
                alus: self.w as u32,
                sram_bits: (self.d as u64) * (self.w as u64) * 64,
                tcam_entries: 0,
            },
            EvictionPolicy::Lru => ResourceUsage {
                stages: self.w as u32,
                alus: self.w as u32,
                sram_bits: (self.d as u64) * (self.w as u64) * 64,
                tcam_entries: 0,
            },
        }
    }
}

/// The complete DISTINCT pruner: row selection, optional fingerprinting,
/// and the cache matrix. This is what the switch program implements.
#[derive(Debug, Clone)]
pub struct DistinctPruner {
    matrix: CacheMatrix,
    row_hash: HashFn,
    fingerprinter: Option<Fingerprinter>,
}

impl DistinctPruner {
    /// Deterministic-guarantee pruner storing raw 64-bit values.
    pub fn new(d: usize, w: usize, policy: EvictionPolicy, seed: u64) -> Self {
        DistinctPruner {
            matrix: CacheMatrix::new(d, w, policy, seed),
            row_hash: HashFn::new(seed ^ 0xd157_1c7a),
            fingerprinter: None,
        }
    }

    /// Probabilistic-guarantee pruner: keys are reduced to `bits`-wide
    /// fingerprints (Theorem 4 sizes `bits` via
    /// [`crate::fingerprint::fingerprint_bits`]). Row selection uses an
    /// independent hash of the original key.
    pub fn with_fingerprints(
        d: usize,
        w: usize,
        policy: EvictionPolicy,
        seed: u64,
        bits: u32,
    ) -> Self {
        DistinctPruner {
            matrix: CacheMatrix::new(d, w, policy, seed),
            row_hash: HashFn::new(seed ^ 0xd157_1c7a),
            fingerprinter: Some(Fingerprinter::new(seed ^ 0xf1f1_f1f1, bits)),
        }
    }

    /// Process one key.
    pub fn process(&mut self, key: u64) -> Decision {
        let row = self.row_hash.bucket(key, self.matrix.rows());
        let stored = match &self.fingerprinter {
            Some(f) => f.fp(key),
            None => key,
        };
        self.matrix.process_in_row(row, stored)
    }

    /// Key-lane block loop: identical decisions to per-entry
    /// [`Self::process`] calls, with the fingerprint branch hoisted out
    /// of the loop — the switch hot path for DISTINCT / DistinctMulti
    /// blocks.
    pub fn process_keys(&mut self, keys: &[u64], out: &mut [Decision]) {
        match &self.fingerprinter {
            None => {
                for (d, &k) in out.iter_mut().zip(keys) {
                    let row = self.row_hash.bucket(k, self.matrix.rows());
                    *d = self.matrix.process_in_row(row, k);
                }
            }
            Some(f) => {
                for (d, &k) in out.iter_mut().zip(keys) {
                    let row = self.row_hash.bucket(k, self.matrix.rows());
                    *d = self.matrix.process_in_row(row, f.fp(k));
                }
            }
        }
    }

    /// Access the underlying matrix (for resource accounting).
    pub fn matrix(&self) -> &CacheMatrix {
        &self.matrix
    }
}

impl RowPruner for DistinctPruner {
    fn process_row(&mut self, row: &[u64]) -> Decision {
        self.process(row[0])
    }

    fn process_block(&mut self, cols: &[&[u64]], out: &mut [Decision]) {
        // The key lane is the only column the switch reads.
        self.process_keys(cols[0], out);
    }

    fn reset(&mut self) {
        self.matrix.clear();
    }

    fn name(&self) -> &'static str {
        "distinct"
    }
}

/// [`crate::batch::BatchAccess`] adapter for §9 multi-entry packets: the
/// collision domain is the matrix row the key hashes to.
#[derive(Debug, Clone)]
pub struct DistinctBatchAccess {
    inner: DistinctPruner,
}

impl DistinctBatchAccess {
    /// Wrap a DISTINCT pruner for batching.
    pub fn new(inner: DistinctPruner) -> Self {
        DistinctBatchAccess { inner }
    }
}

impl crate::batch::BatchAccess for DistinctBatchAccess {
    fn row_of(&mut self, entry: &[u64]) -> usize {
        self.inner
            .row_hash
            .bucket(entry[0], self.inner.matrix.rows())
    }

    fn process_one(&mut self, entry: &[u64]) -> Decision {
        self.inner.process(entry[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;

    fn run(matrix: &mut CacheMatrix, stream: &[u64]) -> Vec<Decision> {
        stream.iter().map(|&v| matrix.process(v)).collect()
    }

    #[test]
    fn first_occurrence_always_forwarded_lru() {
        let mut m = CacheMatrix::new(16, 2, EvictionPolicy::Lru, 1);
        let mut seen = HashSet::new();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(0..500u64);
            let d = m.process(v);
            if seen.insert(v) {
                assert_eq!(d, Decision::Forward, "first occurrence of {v} pruned");
            }
        }
    }

    #[test]
    fn first_occurrence_always_forwarded_fifo() {
        let mut m = CacheMatrix::new(16, 2, EvictionPolicy::Fifo, 1);
        let mut seen = HashSet::new();
        let mut rng = StdRng::seed_from_u64(43);
        for _ in 0..10_000 {
            let v = rng.gen_range(0..500u64);
            let d = m.process(v);
            if seen.insert(v) {
                assert_eq!(d, Decision::Forward, "first occurrence of {v} pruned");
            }
        }
    }

    #[test]
    fn immediate_duplicate_pruned() {
        for policy in [EvictionPolicy::Lru, EvictionPolicy::Fifo] {
            let mut m = CacheMatrix::new(8, 2, policy, 7);
            assert_eq!(m.process(99), Decision::Forward);
            assert_eq!(m.process(99), Decision::Prune);
            assert_eq!(m.process(99), Decision::Prune);
        }
    }

    #[test]
    fn lru_keeps_hot_values() {
        // One row, w=2. Access pattern a,b,a,c,a — LRU keeps `a` cached
        // throughout, so both later `a`s are pruned.
        let mut m = CacheMatrix::new(1, 2, EvictionPolicy::Lru, 0);
        let ds = run(&mut m, &[10, 20, 10, 30, 10]);
        assert_eq!(
            ds,
            vec![
                Decision::Forward, // 10
                Decision::Forward, // 20
                Decision::Prune,   // 10 hit, moved to front
                Decision::Forward, // 30 evicts 20
                Decision::Prune,   // 10 still cached
            ]
        );
    }

    #[test]
    fn fifo_evicts_hot_values() {
        // Same pattern under FIFO: the hit on `a` does not refresh it, so
        // `c` evicts `a` (round-robin cursor points at slot 0) and the final
        // `a` is forwarded again.
        let mut m = CacheMatrix::new(1, 2, EvictionPolicy::Fifo, 0);
        let ds = run(&mut m, &[10, 20, 10, 30, 10]);
        assert_eq!(
            ds,
            vec![
                Decision::Forward, // 10
                Decision::Forward, // 20
                Decision::Prune,   // 10 hit (no refresh)
                Decision::Forward, // 30 overwrites slot 0 (10)
                Decision::Forward, // 10 was evicted
            ]
        );
    }

    #[test]
    fn full_matrix_prunes_nearly_all_duplicates_of_small_domain() {
        // Paper Fig 10a: with w=2, d=4096 Cheetah prunes over 99% of the
        // entries when the distinct count is far below capacity. (Not 100%:
        // balls-in-bins occasionally stacks ≥3 values on one width-2 row.)
        let mut m = CacheMatrix::new(4096, 2, EvictionPolicy::Lru, 3);
        let mut rng = StdRng::seed_from_u64(9);
        let mut stats = crate::decision::PruneStats::default();
        let mut seen = HashSet::new();
        for _ in 0..100_000 {
            let v = rng.gen_range(0..500u64);
            let d = m.process(v);
            if !seen.insert(v) {
                stats.record(d);
            }
        }
        assert!(
            stats.pruned_fraction() > 0.99,
            "500 distinct values in 4096×2 should prune >99% of duplicates, got {:.4}",
            stats.pruned_fraction()
        );
    }

    #[test]
    fn pruning_rate_respects_theorem_1_bound() {
        // Random-order stream, D=1500 distinct, d=100, w=4:
        // expected prune fraction ≥ 0.99·min(wd/(De),1) = 0.99·(400/4078) ≈ 0.097.
        let d = 100;
        let w = 4;
        let distinct = 1500u64;
        let mut m = CacheMatrix::new(d, w, EvictionPolicy::Lru, 5);
        let mut rng = StdRng::seed_from_u64(11);
        let mut stats = crate::decision::PruneStats::default();
        let mut seen = HashSet::new();
        for _ in 0..200_000 {
            let v = rng.gen_range(0..distinct);
            let dec = m.process(v);
            if !seen.insert(v) {
                stats.record(dec);
            }
        }
        let bound = crate::params::distinct_expected_prune_fraction(distinct, d, w);
        assert!(
            stats.pruned_fraction() >= bound,
            "pruned {:.4} below Theorem 1 bound {bound:.4}",
            stats.pruned_fraction()
        );
    }

    #[test]
    fn fingerprint_mode_no_false_positive_at_64_bits() {
        let mut p = DistinctPruner::with_fingerprints(64, 2, EvictionPolicy::Lru, 1, 64);
        let mut seen = HashSet::new();
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..20_000 {
            let v = rng.gen_range(0..1000u64);
            let d = p.process(v);
            if seen.insert(v) {
                assert_eq!(d, Decision::Forward, "64-bit fp should not collide here");
            }
        }
    }

    #[test]
    fn narrow_fingerprints_do_collide() {
        // 6-bit fingerprints over 4096 keys in few rows must eventually
        // prune a first occurrence — demonstrating why Theorem 4 matters.
        let mut p = DistinctPruner::with_fingerprints(4, 8, EvictionPolicy::Lru, 1, 6);
        let mut seen = HashSet::new();
        let mut false_prunes = 0;
        for v in 0..4096u64 {
            let d = p.process(v);
            if seen.insert(v) && d == Decision::Prune {
                false_prunes += 1;
            }
        }
        assert!(false_prunes > 0, "6-bit fingerprints should collide");
    }

    #[test]
    fn key_block_loop_matches_per_entry_decisions() {
        let mut rng = StdRng::seed_from_u64(23);
        let keys: Vec<u64> = (0..8_000).map(|_| rng.gen_range(0..700u64)).collect();
        for fingerprinted in [false, true] {
            let mk = || {
                if fingerprinted {
                    DistinctPruner::with_fingerprints(64, 2, EvictionPolicy::Lru, 1, 32)
                } else {
                    DistinctPruner::new(64, 2, EvictionPolicy::Lru, 1)
                }
            };
            let mut a = mk();
            let expected: Vec<Decision> = keys.iter().map(|&k| a.process(k)).collect();
            let mut b = mk();
            let mut got = vec![Decision::Prune; keys.len()];
            b.process_keys(&keys, &mut got);
            assert_eq!(got, expected, "fingerprinted={fingerprinted}");
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut p = DistinctPruner::new(8, 2, EvictionPolicy::Lru, 2);
        assert_eq!(p.process(5), Decision::Forward);
        assert_eq!(p.process(5), Decision::Prune);
        p.reset();
        assert_eq!(p.process(5), Decision::Forward);
    }

    #[test]
    fn row_pruner_interface() {
        let mut p = DistinctPruner::new(8, 2, EvictionPolicy::Lru, 2);
        assert_eq!(p.name(), "distinct");
        assert_eq!(p.process_row(&[7, 0, 0]), Decision::Forward);
        assert_eq!(p.process_row(&[7, 1, 2]), Decision::Prune);
    }

    #[test]
    fn resources_match_table2() {
        let model = SwitchModel::tofino_like();
        // Table 2 defaults: w=2, d=4096.
        let fifo = CacheMatrix::new(4096, 2, EvictionPolicy::Fifo, 0);
        let r = fifo.resources(&model);
        assert_eq!(r.stages, 1); // ⌈2/A⌉ with A ≥ 2
        assert_eq!(r.alus, 2);
        assert_eq!(r.sram_bits, 4096 * 2 * 64);
        assert_eq!(r.tcam_entries, 0);
        let lru = CacheMatrix::new(4096, 2, EvictionPolicy::Lru, 0);
        let r = lru.resources(&model);
        assert_eq!(r.stages, 2); // w stages
        assert_eq!(r.alus, 2);
    }
}
