//! JOIN pruning with Bloom filters (§4.3, Example 4; Figures 10e/11e).
//!
//! For `A JOIN B ON A.c = B.c` the switch streams the join column twice.
//! Pass 1 records every observed key of each side in a Bloom filter
//! (`F_A`, `F_B`); pass 2 prunes a packet from `A` whenever `F_B` reports
//! no match (and symmetrically). Bloom filters have no false negatives, so
//! no matching entry is ever pruned; false positives merely let some
//! non-matching entries through, costing pruning rate but never
//! correctness.
//!
//! Two filter implementations mirror Table 2's rows:
//!
//! * [`BloomFilter`] — classic `H`-hash filter: 2 stages, `H` ALUs.
//! * [`RegisterBloomFilter`] — a *blocked* filter fitting one stage and one
//!   stateful ALU: a single hash picks a 64-bit register block and one of
//!   `⌈64/H⌉` precomputed `H`-bit patterns; insert ORs the pattern in, query
//!   checks containment. The pattern table accounts for the
//!   `⌈64/H⌉ × 64b` extra SRAM in Table 2.
//!
//! When the two tables differ greatly in size, [`AsymmetricJoin`] streams
//! the small table *unpruned* while building a low-false-positive filter,
//! then prunes only the big table — one pass each (§4.3's optimization).

use crate::decision::{Decision, RowPruner};
use crate::hash::HashFn;
use crate::resources::{table2, ResourceUsage};

/// The filter role in a two-pass join, used by [`JoinPruner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Left input (table A).
    Left,
    /// Right input (table B).
    Right,
}

/// Join flavour (footnote 3: "With slight modifications, Cheetah can also
/// prune LEFT/RIGHT OUTER joins").
///
/// The modification: the *preserved* side of an outer join appears in the
/// output whether or not it matches, so the switch must forward all of it
/// and may prune only the opposite side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinType {
    /// SQL's default (both sides pruned).
    #[default]
    Inner,
    /// All left rows appear in the output (left side never pruned).
    LeftOuter,
    /// All right rows appear in the output (right side never pruned).
    RightOuter,
}

impl JoinType {
    /// Whether entries from `side` may be pruned at all under this join.
    #[inline]
    pub fn prunable(self, side: Side) -> bool {
        !matches!(
            (self, side),
            (JoinType::LeftOuter, Side::Left) | (JoinType::RightOuter, Side::Right)
        )
    }
}

/// Common interface over the two Bloom filter variants.
pub trait KeyFilter {
    /// Record a key.
    fn insert(&mut self, key: u64);
    /// Might the key have been inserted? Never false when it was (no false
    /// negatives).
    fn contains(&self, key: u64) -> bool;
    /// Reset to empty.
    fn clear(&mut self);
    /// Filter size in bits.
    fn bits(&self) -> u64;
    /// Switch resources (Table 2).
    fn resources(&self) -> ResourceUsage;
}

/// Partitioned Bloom filter: `h` hash functions, each owning an `m/h`-bit
/// segment.
///
/// Partitioning (rather than letting every hash address the full bit
/// array) is what makes the filter implementable on a PISA pipeline: each
/// segment is one register array touched by exactly one read-modify-write
/// per packet. The false-positive rate is asymptotically the same as the
/// classic layout.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    words: Vec<u64>,
    seg_words: usize,
    hashes: Vec<HashFn>,
}

impl BloomFilter {
    /// Create a filter of `m_bits` total bits (rounded up so each of the
    /// `h` segments holds whole 64-bit words). Table 2 default:
    /// `M = 4 MB, H = 3`.
    pub fn new(m_bits: u64, h: usize, seed: u64) -> Self {
        assert!(h >= 1, "need at least one hash function");
        assert!(m_bits >= 64 * h as u64, "each segment needs ≥1 word");
        let seg_words = m_bits.div_ceil(64 * h as u64) as usize;
        BloomFilter {
            words: vec![0; seg_words * h],
            seg_words,
            hashes: (0..h)
                .map(|i| HashFn::new(seed ^ ((i as u64) << 32)))
                .collect(),
        }
    }

    /// Create a filter sized for `n` keys at target false-positive rate
    /// `p`, using the standard `m = −n·ln p / ln²2`, `h = (m/n)·ln 2`.
    pub fn for_capacity(n: u64, p: f64, seed: u64) -> Self {
        assert!(p > 0.0 && p < 1.0);
        let n_f = (n.max(1)) as f64;
        let ln2 = std::f64::consts::LN_2;
        let m = (-n_f * p.ln() / (ln2 * ln2)).ceil().max(64.0) as u64;
        let h = ((m as f64 / n_f) * ln2).round().max(1.0) as usize;
        BloomFilter::new(m.max(64 * h as u64), h, seed)
    }

    /// The raw register words, segment-major (`seg_words` words per hash).
    ///
    /// This is the filter's entire soft state as a flat `u64` array — the
    /// serialization surface for shipping a shard-built filter to the
    /// master over the wire protocol.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// `(segment words, hash count)` — with the seed, everything needed
    /// to reconstruct an identical filter via [`BloomFilter::from_parts`].
    pub fn geometry(&self) -> (usize, usize) {
        (self.seg_words, self.hashes.len())
    }

    /// Rebuild a filter from its shipped parts: geometry, the seed its
    /// hash functions were derived from, and the raw register words.
    /// Inverse of [`BloomFilter::words`]/[`BloomFilter::geometry`] for a
    /// filter built with the same `seed` (hash derivation matches
    /// [`BloomFilter::new`]).
    pub fn from_parts(seg_words: usize, h: usize, seed: u64, words: Vec<u64>) -> Self {
        assert!(h >= 1, "need at least one hash function");
        assert!(seg_words >= 1, "each segment needs ≥1 word");
        assert_eq!(words.len(), seg_words * h, "word count must match geometry");
        BloomFilter {
            words,
            seg_words,
            hashes: (0..h)
                .map(|i| HashFn::new(seed ^ ((i as u64) << 32)))
                .collect(),
        }
    }

    /// Union another filter into this one (bitwise OR of the bit arrays).
    ///
    /// This is the multi-switch combine primitive: when each shard builds
    /// its own filter over its slice of a join side, the union behaves
    /// exactly like one filter that observed every shard's keys — a key
    /// inserted on *any* shard is contained in the union, so the merged
    /// filter keeps the no-false-negative guarantee across shards. Both
    /// filters must share geometry and seeds (same control-plane install).
    pub fn union(&mut self, other: &BloomFilter) {
        assert_eq!(
            (self.seg_words, &self.hashes),
            (other.seg_words, &other.hashes),
            "bloom union requires identical geometry and seeds"
        );
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Bit position of `key` within segment `i`: `(word_index, mask)`,
    /// with `word_index` relative to the whole filter.
    #[inline]
    fn bit_index(&self, i: usize, key: u64) -> (usize, u64) {
        let seg_bits = self.seg_words as u64 * 64;
        let b = ((u128::from(self.hashes[i].hash(key)) * u128::from(seg_bits)) >> 64) as u64;
        (i * self.seg_words + (b / 64) as usize, 1u64 << (b % 64))
    }
}

impl KeyFilter for BloomFilter {
    fn insert(&mut self, key: u64) {
        for i in 0..self.hashes.len() {
            let (w, mask) = self.bit_index(i, key);
            self.words[w] |= mask;
        }
    }

    fn contains(&self, key: u64) -> bool {
        (0..self.hashes.len()).all(|i| {
            let (w, mask) = self.bit_index(i, key);
            self.words[w] & mask != 0
        })
    }

    fn clear(&mut self) {
        self.words.fill(0);
    }

    fn bits(&self) -> u64 {
        self.words.len() as u64 * 64
    }

    fn resources(&self) -> ResourceUsage {
        table2::join_bf(self.bits(), self.hashes.len() as u32)
    }
}

/// Register (blocked) Bloom filter: one stage, one stateful ALU.
///
/// A *single* hash invocation yields both the 64-bit register block index
/// (high bits) and `H` six-bit fields (low bits) that select bit positions
/// inside the block. The control plane installs a small mask table
/// (Table 2 charges it as `⌈64/H⌉ × 64b` SRAM) mapping each field to its
/// one-hot mask; the dataplane ORs the `H` masks and performs one
/// read-modify-write against the block — a classic blocked Bloom filter in
/// one stage and one stateful ALU. All `H` probes share a cache block, so
/// the false-positive rate is slightly above a free-placement filter's,
/// which Figure 10e shows to be marginal.
#[derive(Debug, Clone)]
pub struct RegisterBloomFilter {
    blocks: Vec<u64>,
    h: u32,
    hash: HashFn,
}

impl RegisterBloomFilter {
    /// Create a filter of `m_bits` bits (rounded up to 64-bit blocks) where
    /// each key sets `h ≤ 10` bits of one block.
    pub fn new(m_bits: u64, h: u32, seed: u64) -> Self {
        assert!(m_bits >= 64);
        assert!((1..=10).contains(&h), "h six-bit fields must fit the hash");
        RegisterBloomFilter {
            blocks: vec![0; m_bits.div_ceil(64) as usize],
            h,
            hash: HashFn::new(seed),
        }
    }

    #[inline]
    fn slot(&self, key: u64) -> (usize, u64) {
        let hv = self.hash.hash(key);
        let block = ((u128::from(hv) * self.blocks.len() as u128) >> 64) as usize;
        // H six-bit fields of the hash choose bit positions (mask table
        // lookups on hardware); independent of the block index, which uses
        // the high bits via multiply-shift.
        let mut mask = 0u64;
        for i in 0..self.h {
            mask |= 1u64 << ((hv >> (6 * i)) & 63);
        }
        (block, mask)
    }
}

impl KeyFilter for RegisterBloomFilter {
    fn insert(&mut self, key: u64) {
        let (b, p) = self.slot(key);
        self.blocks[b] |= p;
    }

    fn contains(&self, key: u64) -> bool {
        let (b, p) = self.slot(key);
        self.blocks[b] & p == p
    }

    fn clear(&mut self) {
        self.blocks.fill(0);
    }

    fn bits(&self) -> u64 {
        self.blocks.len() as u64 * 64
    }

    fn resources(&self) -> ResourceUsage {
        table2::join_rbf(self.blocks.len() as u64 * 64, self.h)
    }
}

/// Two-pass symmetric join pruner (§4.3, Example 4).
///
/// Pass 1 (`observe`) streams both join columns through the switch to
/// populate `F_A` and `F_B`; pass 2 (`prune`) re-streams each side and
/// prunes keys the *other* side's filter has never seen.
#[derive(Debug, Clone)]
pub struct JoinPruner<F: KeyFilter> {
    filter_a: F,
    filter_b: F,
}

impl<F: KeyFilter> JoinPruner<F> {
    /// Build from two (empty) filters.
    pub fn new(filter_a: F, filter_b: F) -> Self {
        JoinPruner { filter_a, filter_b }
    }

    /// Pass 1: record a key observed on `side`.
    pub fn observe(&mut self, side: Side, key: u64) {
        match side {
            Side::Left => self.filter_a.insert(key),
            Side::Right => self.filter_b.insert(key),
        }
    }

    /// Pass 2: decide a key from `side` against the opposite filter
    /// (INNER join semantics).
    pub fn prune_decision(&self, side: Side, key: u64) -> Decision {
        self.prune_decision_typed(JoinType::Inner, side, key)
    }

    /// Pass 2 for a specific join flavour: the preserved side of an outer
    /// join is always forwarded; the other side prunes as usual.
    pub fn prune_decision_typed(&self, join: JoinType, side: Side, key: u64) -> Decision {
        if !join.prunable(side) {
            return Decision::Forward;
        }
        let other = match side {
            Side::Left => &self.filter_b,
            Side::Right => &self.filter_a,
        };
        if other.contains(key) {
            Decision::Forward
        } else {
            Decision::Prune
        }
    }

    /// Pass-1 block loop over parallel `(flow id, key)` lanes
    /// (`sides[i]`: 0 = A, 1 = B — [`JoinPassTwo`]'s §7.2 convention).
    /// Join partitions are single-sided, so the loop walks runs of equal
    /// flow id and hoists the side dispatch out of the per-entry path.
    pub fn observe_block(&mut self, sides: &[u64], keys: &[u64]) {
        let mut i = 0;
        while i < keys.len() {
            let side = sides[i];
            let mut j = i + 1;
            while j < keys.len() && sides[j] == side {
                j += 1;
            }
            let filter = if side == 0 {
                &mut self.filter_a
            } else {
                &mut self.filter_b
            };
            for &k in &keys[i..j] {
                filter.insert(k);
            }
            i = j;
        }
    }

    /// Pass-2 block loop: decide every `(flow id, key)` entry against the
    /// opposite side's filter (INNER semantics), writing `out[i]` —
    /// bit-identical to per-entry [`Self::prune_decision`] calls.
    pub fn probe_block(&self, sides: &[u64], keys: &[u64], out: &mut [Decision]) {
        let mut i = 0;
        while i < keys.len() {
            let side = sides[i];
            let mut j = i + 1;
            while j < keys.len() && sides[j] == side {
                j += 1;
            }
            let other = if side == 0 {
                &self.filter_b
            } else {
                &self.filter_a
            };
            for (d, &k) in out[i..j].iter_mut().zip(&keys[i..j]) {
                *d = if other.contains(k) {
                    Decision::Forward
                } else {
                    Decision::Prune
                };
            }
            i = j;
        }
    }

    /// Reset both filters.
    pub fn clear(&mut self) {
        self.filter_a.clear();
        self.filter_b.clear();
    }

    /// Take the `(F_A, F_B)` pair out of the pruner — how a shard's build
    /// pass exports its local filters to the cross-shard combine layer
    /// (see [`BloomFilter::union`]).
    pub fn into_filters(self) -> (F, F) {
        (self.filter_a, self.filter_b)
    }

    /// Borrow the `(F_A, F_B)` pair without consuming the pruner — how a
    /// serving layer snapshots the built filters into a cross-query cache
    /// after pass 1 while the pruner keeps probing in pass 2.
    pub fn filters(&self) -> (&F, &F) {
        (&self.filter_a, &self.filter_b)
    }

    /// Combined switch resources of the two filters.
    pub fn resources(&self) -> ResourceUsage {
        self.filter_a.resources().plus(self.filter_b.resources())
    }
}

/// Asymmetric join optimization: stream the small side unpruned while
/// building its filter at a low false-positive rate, then prune the big
/// side in a single pass.
#[derive(Debug)]
pub struct AsymmetricJoin<F: KeyFilter> {
    small_filter: F,
}

impl<F: KeyFilter> AsymmetricJoin<F> {
    /// Wrap an empty filter for the small table's keys.
    pub fn new(small_filter: F) -> Self {
        AsymmetricJoin { small_filter }
    }

    /// Stream one small-table key: recorded and always forwarded.
    pub fn observe_small(&mut self, key: u64) -> Decision {
        self.small_filter.insert(key);
        Decision::Forward
    }

    /// Stream one big-table key: pruned unless the small side may match.
    pub fn prune_big(&self, key: u64) -> Decision {
        if self.small_filter.contains(key) {
            Decision::Forward
        } else {
            Decision::Prune
        }
    }
}

/// A [`RowPruner`] adapter for the second pass of a symmetric join, with
/// the side resolved from the packet's flow id (`row[0]`: 0 = A, 1 = B,
/// `row[1]` = key), matching how the switch demultiplexes streams (§7.2).
#[derive(Debug)]
pub struct JoinPassTwo<F: KeyFilter> {
    inner: JoinPruner<F>,
}

impl<F: KeyFilter> JoinPassTwo<F> {
    /// Wrap a pass-1-populated join pruner.
    pub fn new(inner: JoinPruner<F>) -> Self {
        JoinPassTwo { inner }
    }
}

impl<F: KeyFilter> RowPruner for JoinPassTwo<F> {
    fn process_row(&mut self, row: &[u64]) -> Decision {
        let side = if row[0] == 0 { Side::Left } else { Side::Right };
        self.inner.prune_decision(side, row[1])
    }

    fn reset(&mut self) {
        self.inner.clear();
    }

    fn name(&self) -> &'static str {
        "join"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;

    #[test]
    fn bloom_no_false_negatives() {
        let mut bf = BloomFilter::new(1 << 12, 3, 0);
        let keys: Vec<u64> = (0..200).map(|i| i * 7919).collect();
        for &k in &keys {
            bf.insert(k);
        }
        for &k in &keys {
            assert!(bf.contains(k), "false negative for {k}");
        }
    }

    #[test]
    fn register_bloom_no_false_negatives() {
        let mut bf = RegisterBloomFilter::new(1 << 12, 3, 0);
        let keys: Vec<u64> = (0..200).map(|i| i * 104729).collect();
        for &k in &keys {
            bf.insert(k);
        }
        for &k in &keys {
            assert!(bf.contains(k), "false negative for {k}");
        }
    }

    #[test]
    fn bloom_false_positive_rate_reasonable() {
        // n=1000 keys at target 1%: measured FPR should be within ~3x.
        let mut bf = BloomFilter::for_capacity(1000, 0.01, 1);
        for k in 0..1000u64 {
            bf.insert(k);
        }
        let fps = (1_000_000..1_100_000u64)
            .filter(|&k| bf.contains(k))
            .count();
        let rate = fps as f64 / 100_000.0;
        assert!(rate < 0.03, "false positive rate too high: {rate}");
    }

    #[test]
    fn register_bloom_fpr_worse_but_bounded() {
        // Same bit budget: RBF trades FPR for single-stage operation.
        let mut bf = BloomFilter::new(1 << 14, 3, 2);
        let mut rbf = RegisterBloomFilter::new(1 << 14, 3, 2);
        for k in 0..1000u64 {
            bf.insert(k);
            rbf.insert(k);
        }
        let probe = 1_000_000..1_200_000u64;
        let fp_bf = probe.clone().filter(|&k| bf.contains(k)).count() as f64;
        let fp_rbf = probe.clone().filter(|&k| rbf.contains(k)).count() as f64;
        // Both should be small; RBF within an order of magnitude of BF,
        // matching Figure 10e's "quite close" observation.
        assert!(fp_rbf / 200_000.0 < 0.05, "RBF FPR blew up");
        assert!(fp_bf <= fp_rbf * 10.0 + 100.0);
    }

    #[test]
    fn rbf_masks_have_at_most_h_bits() {
        let rbf = RegisterBloomFilter::new(1 << 10, 3, 0);
        for key in 0..1000u64 {
            let (block, mask) = rbf.slot(key);
            assert!(block < rbf.blocks.len());
            let ones = mask.count_ones();
            assert!((1..=3).contains(&ones), "mask has {ones} bits set");
        }
    }

    #[test]
    fn join_never_prunes_matching_entry() {
        let mut rng = StdRng::seed_from_u64(3);
        let a_keys: Vec<u64> = (0..5_000).map(|_| rng.gen_range(0..20_000)).collect();
        let b_keys: Vec<u64> = (0..5_000).map(|_| rng.gen_range(10_000..30_000)).collect();
        let mut jp = JoinPruner::new(
            BloomFilter::new(1 << 14, 3, 0),
            BloomFilter::new(1 << 14, 3, 1),
        );
        for &k in &a_keys {
            jp.observe(Side::Left, k);
        }
        for &k in &b_keys {
            jp.observe(Side::Right, k);
        }
        let b_set: HashSet<u64> = b_keys.iter().copied().collect();
        let a_set: HashSet<u64> = a_keys.iter().copied().collect();
        for &k in &a_keys {
            if b_set.contains(&k) {
                assert!(
                    jp.prune_decision(Side::Left, k).is_forward(),
                    "pruned a matching A key {k}"
                );
            }
        }
        for &k in &b_keys {
            if a_set.contains(&k) {
                assert!(
                    jp.prune_decision(Side::Right, k).is_forward(),
                    "pruned a matching B key {k}"
                );
            }
        }
    }

    #[test]
    fn join_prunes_most_non_matching() {
        // Disjoint key ranges: essentially everything should be pruned.
        let mut jp = JoinPruner::new(
            BloomFilter::new(1 << 16, 3, 0),
            BloomFilter::new(1 << 16, 3, 1),
        );
        for k in 0..2_000u64 {
            jp.observe(Side::Left, k);
            jp.observe(Side::Right, k + 1_000_000);
        }
        let pruned = (0..2_000u64)
            .filter(|&k| jp.prune_decision(Side::Left, k).is_prune())
            .count();
        assert!(pruned > 1_990, "expected near-total pruning, got {pruned}");
    }

    #[test]
    fn asymmetric_join_small_side_all_forwarded() {
        let mut aj = AsymmetricJoin::new(BloomFilter::for_capacity(100, 0.001, 0));
        for k in 0..100u64 {
            assert!(aj.observe_small(k).is_forward());
        }
        for k in 0..100u64 {
            assert!(aj.prune_big(k).is_forward(), "matching big-side key pruned");
        }
        let pruned = (10_000..20_000u64)
            .filter(|&k| aj.prune_big(k).is_prune())
            .count();
        assert!(pruned > 9_900, "low-FPR filter should prune ~all: {pruned}");
    }

    #[test]
    fn block_loops_match_per_entry_decisions() {
        let mut rng = StdRng::seed_from_u64(11);
        let sides: Vec<u64> = (0..4_000).map(|i| u64::from(i >= 2_000)).collect();
        let keys: Vec<u64> = (0..4_000).map(|_| rng.gen_range(0..3_000)).collect();
        let mk = || {
            JoinPruner::new(
                BloomFilter::new(1 << 14, 3, 5),
                BloomFilter::new(1 << 14, 3, 6),
            )
        };
        // Per-entry oracle.
        let mut a = mk();
        for (&s, &k) in sides.iter().zip(&keys) {
            a.observe(if s == 0 { Side::Left } else { Side::Right }, k);
        }
        let expected: Vec<Decision> = sides
            .iter()
            .zip(&keys)
            .map(|(&s, &k)| a.prune_decision(if s == 0 { Side::Left } else { Side::Right }, k))
            .collect();
        // Block path over the same lanes (mixed-side block included).
        let mut b = mk();
        b.observe_block(&sides, &keys);
        let mut out = vec![Decision::Prune; keys.len()];
        b.probe_block(&sides, &keys, &mut out);
        assert_eq!(out, expected, "block loops must be bit-identical");
    }

    #[test]
    fn row_pruner_adapter_routes_sides() {
        let mut jp = JoinPruner::new(BloomFilter::new(64, 1, 0), BloomFilter::new(64, 1, 1));
        jp.observe(Side::Left, 42);
        let mut p2 = JoinPassTwo::new(jp);
        // B-side key 42 is forwarded because F_A saw it.
        assert!(p2.process_row(&[1, 42]).is_forward());
        assert_eq!(p2.name(), "join");
        p2.reset();
        assert!(p2.process_row(&[1, 42]).is_prune());
    }

    #[test]
    fn resources_match_table2() {
        let bf = BloomFilter::new(4 * 8 * 1024 * 1024, 3, 0);
        let r = bf.resources();
        assert_eq!(r.stages, 2);
        assert_eq!(r.alus, 3);
        let rbf = RegisterBloomFilter::new(4 * 8 * 1024 * 1024, 3, 0);
        let r = rbf.resources();
        assert_eq!(r.stages, 1);
        assert_eq!(r.alus, 1);
        assert_eq!(r.sram_bits, 4 * 8 * 1024 * 1024 + 22 * 64);
    }

    #[test]
    fn union_is_equivalent_to_one_filter_observing_everything() {
        // Two shards insert disjoint halves; the union must contain every
        // key either shard saw, bit-for-bit like a single filter would.
        let mut whole = BloomFilter::new(1 << 12, 3, 9);
        let mut shard_a = BloomFilter::new(1 << 12, 3, 9);
        let mut shard_b = BloomFilter::new(1 << 12, 3, 9);
        for k in 0..500u64 {
            whole.insert(k);
            if k % 2 == 0 {
                shard_a.insert(k);
            } else {
                shard_b.insert(k);
            }
        }
        shard_a.union(&shard_b);
        assert_eq!(shard_a.words, whole.words, "union must equal one filter");
        for k in 0..500u64 {
            assert!(shard_a.contains(k), "union lost shard key {k}");
        }
    }

    #[test]
    #[should_panic(expected = "identical geometry")]
    fn union_rejects_mismatched_seeds() {
        let mut a = BloomFilter::new(1 << 10, 3, 0);
        let b = BloomFilter::new(1 << 10, 3, 1);
        a.union(&b);
    }

    #[test]
    fn into_filters_exports_build_state() {
        let mut jp = JoinPruner::new(BloomFilter::new(256, 2, 0), BloomFilter::new(256, 2, 1));
        jp.observe(Side::Left, 7);
        jp.observe(Side::Right, 9);
        let (fa, fb) = jp.into_filters();
        assert!(fa.contains(7) && !fa.contains(9));
        assert!(fb.contains(9) && !fb.contains(7));
    }

    #[test]
    fn clear_resets_filters() {
        let mut bf = BloomFilter::new(1 << 10, 2, 0);
        bf.insert(5);
        assert!(bf.contains(5));
        bf.clear();
        assert!(!bf.contains(5));
    }

    #[test]
    fn outer_join_preserved_side_never_pruned() {
        let mut jp = JoinPruner::new(
            BloomFilter::new(1 << 12, 3, 0),
            BloomFilter::new(1 << 12, 3, 1),
        );
        // Disjoint key sets: inner join would prune everything.
        for k in 0..500u64 {
            jp.observe(Side::Left, k);
            jp.observe(Side::Right, k + 1_000_000);
        }
        for k in 0..500u64 {
            assert!(
                jp.prune_decision_typed(JoinType::LeftOuter, Side::Left, k)
                    .is_forward(),
                "LEFT OUTER must preserve left rows"
            );
            assert!(
                jp.prune_decision_typed(JoinType::RightOuter, Side::Right, k + 1_000_000)
                    .is_forward(),
                "RIGHT OUTER must preserve right rows"
            );
        }
        // The opposite side still prunes under an outer join.
        let pruned_right = (0..500u64)
            .filter(|&k| {
                jp.prune_decision_typed(JoinType::LeftOuter, Side::Right, k + 1_000_000)
                    .is_prune()
            })
            .count();
        assert!(
            pruned_right > 490,
            "non-preserved side must prune: {pruned_right}"
        );
    }

    #[test]
    fn outer_join_master_reconstructs_exactly() {
        use std::collections::HashMap;
        let mut rng = StdRng::seed_from_u64(77);
        let left: Vec<u64> = (0..2_000).map(|_| rng.gen_range(0..3_000)).collect();
        let right: Vec<u64> = (0..2_000).map(|_| rng.gen_range(1_500..4_500)).collect();
        let mut jp = JoinPruner::new(
            BloomFilter::new(1 << 14, 3, 0),
            BloomFilter::new(1 << 14, 3, 1),
        );
        for &k in &left {
            jp.observe(Side::Left, k);
        }
        for &k in &right {
            jp.observe(Side::Right, k);
        }
        // LEFT OUTER: output = every left row, matched or NULL-extended.
        let fwd_left: Vec<u64> = left
            .iter()
            .copied()
            .filter(|&k| {
                jp.prune_decision_typed(JoinType::LeftOuter, Side::Left, k)
                    .is_forward()
            })
            .collect();
        assert_eq!(fwd_left, left, "all left rows must survive");
        let fwd_right: Vec<u64> = right
            .iter()
            .copied()
            .filter(|&k| {
                jp.prune_decision_typed(JoinType::LeftOuter, Side::Right, k)
                    .is_forward()
            })
            .collect();
        // Master: per-left-row match count over forwarded right rows must
        // equal the truth (NULL-extension for zero matches).
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &k in &right {
            *truth.entry(k).or_insert(0) += 1;
        }
        let mut got: HashMap<u64, u64> = HashMap::new();
        for &k in &fwd_right {
            *got.entry(k).or_insert(0) += 1;
        }
        for &k in &left {
            assert_eq!(
                got.get(&k).copied().unwrap_or(0),
                truth.get(&k).copied().unwrap_or(0),
                "match count for left key {k}"
            );
        }
    }

    #[test]
    fn join_type_prunability_matrix() {
        assert!(JoinType::Inner.prunable(Side::Left));
        assert!(JoinType::Inner.prunable(Side::Right));
        assert!(!JoinType::LeftOuter.prunable(Side::Left));
        assert!(JoinType::LeftOuter.prunable(Side::Right));
        assert!(JoinType::RightOuter.prunable(Side::Left));
        assert!(!JoinType::RightOuter.prunable(Side::Right));
    }
}
