//! Multiple switches (§9, "Multiple switches").
//!
//! "We can use a 'master switch' to partition the data and offload each
//! partition to a different switch. Each switch can perform local pruning
//! of its partition and return it to the master switch which prunes the
//! data further. This increases the hardware resources at our disposal
//! and allows superior pruning results."
//!
//! [`SwitchTree`] models exactly that: a partitioner hash spreads entries
//! over `k` leaf pruners; leaf survivors pass through a root pruner.
//! Pruning composes safely for every Cheetah algorithm because each layer
//! only ever drops entries that provably cannot affect the output — the
//! composition forwards a subset of what either layer alone would, and
//! the union of guarantees still covers the query result.

use crate::decision::{Decision, PruneStats, RowPruner};
use crate::hash::HashFn;

/// A two-level switch hierarchy: `k` leaf pruners under one root pruner.
pub struct SwitchTree {
    leaves: Vec<Box<dyn RowPruner + Send>>,
    root: Box<dyn RowPruner + Send>,
    partitioner: HashFn,
    /// Per-leaf pruning statistics.
    pub leaf_stats: Vec<PruneStats>,
    /// Root pruning statistics (over leaf survivors only).
    pub root_stats: PruneStats,
}

impl std::fmt::Debug for SwitchTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwitchTree")
            .field("leaves", &self.leaves.len())
            .field("leaf_stats", &self.leaf_stats)
            .field("root_stats", &self.root_stats)
            .finish()
    }
}

impl SwitchTree {
    /// Build a tree from leaf pruners and a root pruner. The partitioner
    /// spreads entries by the hash of their first value (the key), so a
    /// key's entries always visit the same leaf — required for the
    /// key-stateful algorithms (DISTINCT, GROUP BY, HAVING).
    pub fn new(
        leaves: Vec<Box<dyn RowPruner + Send>>,
        root: Box<dyn RowPruner + Send>,
        seed: u64,
    ) -> Self {
        assert!(!leaves.is_empty(), "need at least one leaf switch");
        let n = leaves.len();
        SwitchTree {
            leaves,
            root,
            partitioner: HashFn::new(seed ^ 0x7ee5),
            leaf_stats: vec![PruneStats::default(); n],
            root_stats: PruneStats::default(),
        }
    }

    /// Number of leaf switches.
    pub fn fan_out(&self) -> usize {
        self.leaves.len()
    }

    /// Combined statistics over all entries entering the tree.
    pub fn total_stats(&self) -> PruneStats {
        let mut s = PruneStats::default();
        for l in &self.leaf_stats {
            s.merge(*l);
        }
        // Entries pruned at the root were already counted as processed at
        // a leaf; only add the root's prunes.
        s.pruned += self.root_stats.pruned;
        s
    }
}

impl RowPruner for SwitchTree {
    fn process_row(&mut self, row: &[u64]) -> Decision {
        let leaf = self.partitioner.bucket(row[0], self.leaves.len());
        let d = self.leaves[leaf].process_row(row);
        self.leaf_stats[leaf].record(d);
        if d.is_prune() {
            return Decision::Prune;
        }
        let d = self.root.process_row(row);
        self.root_stats.record(d);
        d
    }

    fn reset(&mut self) {
        for l in &mut self.leaves {
            l.reset();
        }
        self.root.reset();
        self.leaf_stats.fill(PruneStats::default());
        self.root_stats = PruneStats::default();
    }

    fn name(&self) -> &'static str {
        "switch-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distinct::{DistinctPruner, EvictionPolicy};
    use crate::groupby::{Extremum, GroupByPruner};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::{HashMap, HashSet};

    fn distinct_leaf(d: usize, seed: u64) -> Box<dyn RowPruner + Send> {
        Box::new(DistinctPruner::new(d, 2, EvictionPolicy::Lru, seed))
    }

    #[test]
    fn tree_distinct_remains_exact() {
        let mut tree = SwitchTree::new(
            (0..4).map(|i| distinct_leaf(64, i)).collect(),
            distinct_leaf(64, 99),
            7,
        );
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = HashSet::new();
        let mut master = HashSet::new();
        let mut truth = HashSet::new();
        for _ in 0..50_000 {
            let k = rng.gen_range(1..2_000u64);
            truth.insert(k);
            let d = tree.process_row(&[k]);
            if seen.insert(k) {
                assert!(d.is_forward(), "first occurrence of {k} pruned by tree");
            }
            if d.is_forward() {
                master.insert(k);
            }
        }
        assert_eq!(master, truth);
    }

    #[test]
    fn tree_prunes_more_than_single_switch_of_same_size() {
        // §9's claim: a tree of k leaf switches + a root out-prunes one
        // switch with a single leaf's resources.
        // 300 keys overload one 64×2 switch but split comfortably across
        // eight leaves (~37 keys each).
        let stream: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(2);
            (0..200_000).map(|_| rng.gen_range(1..300u64)).collect()
        };
        let mut single = DistinctPruner::new(64, 2, EvictionPolicy::Lru, 3);
        let mut single_fwd = 0u64;
        for &k in &stream {
            if single.process(k).is_forward() {
                single_fwd += 1;
            }
        }
        let mut tree = SwitchTree::new(
            (0..8).map(|i| distinct_leaf(64, i + 10)).collect(),
            distinct_leaf(64, 77),
            7,
        );
        let mut tree_fwd = 0u64;
        for &k in &stream {
            if tree.process_row(&[k]).is_forward() {
                tree_fwd += 1;
            }
        }
        assert!(
            tree_fwd * 2 < single_fwd,
            "8 leaves + root ({tree_fwd}) should far out-prune one switch ({single_fwd})"
        );
    }

    #[test]
    fn tree_groupby_remains_exact() {
        let leaf = |s: u64| -> Box<dyn RowPruner + Send> {
            Box::new(GroupByPruner::new(16, 2, Extremum::Max, s))
        };
        let mut tree = SwitchTree::new((0..3).map(leaf).collect(), leaf(50), 9);
        let mut rng = StdRng::seed_from_u64(3);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut master: HashMap<u64, u64> = HashMap::new();
        for _ in 0..30_000 {
            let (k, v) = (rng.gen_range(1..300u64), rng.gen_range(0..100_000u64));
            let e = truth.entry(k).or_insert(0);
            *e = (*e).max(v);
            if tree.process_row(&[k, v]).is_forward() {
                let e = master.entry(k).or_insert(0);
                *e = (*e).max(v);
            }
        }
        assert_eq!(master, truth, "tree GROUP BY lost a maximum");
    }

    #[test]
    fn stats_account_for_both_levels() {
        let mut tree = SwitchTree::new(
            (0..2).map(|i| distinct_leaf(8, i)).collect(),
            distinct_leaf(8, 42),
            1,
        );
        for k in [1u64, 1, 2, 2, 3] {
            tree.process_row(&[k]);
        }
        let total = tree.total_stats();
        assert_eq!(total.processed, 5);
        assert!(total.pruned >= 2, "duplicates pruned somewhere in the tree");
        let leaf_processed: u64 = tree.leaf_stats.iter().map(|s| s.processed).sum();
        assert_eq!(leaf_processed, 5, "every entry visits exactly one leaf");
    }

    #[test]
    fn reset_clears_all_levels() {
        let mut tree = SwitchTree::new(vec![distinct_leaf(8, 0)], distinct_leaf(8, 1), 1);
        assert!(tree.process_row(&[5]).is_forward());
        assert!(tree.process_row(&[5]).is_prune());
        tree.reset();
        assert!(tree.process_row(&[5]).is_forward());
        assert_eq!(tree.root_stats.processed, 1);
        assert_eq!(tree.name(), "switch-tree");
    }
}
