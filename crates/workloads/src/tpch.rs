//! TPC-H subset for query Q3 (§8.1: "two join operations, three filtering
//! operations, a group-by, and a top N").
//!
//! Q3:
//! ```sql
//! SELECT l_orderkey, SUM(l_extendedprice*(1-l_discount)) AS revenue,
//!        o_orderdate, o_shippriority
//! FROM customer, orders, lineitem
//! WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey
//!   AND l_orderkey = o_orderkey AND o_orderdate < DATE '1995-03-15'
//!   AND l_shipdate > DATE '1995-03-15'
//! GROUP BY l_orderkey, o_orderdate, o_shippriority
//! ORDER BY revenue DESC, o_orderdate LIMIT 10
//! ```
//!
//! Only Q3's columns are generated; dates are day numbers (the Q3 cut date
//! `1995-03-15` is [`Q3_CUT_DATE`]), money is in cents, and discounts are
//! percent points — all integral for switch-representability.

use rand::Rng;

use crate::dist::rng_for;

/// Day-number encoding of `DATE '1995-03-15'` (days since 1992-01-01,
/// the earliest TPC-H order date).
pub const Q3_CUT_DATE: u64 = 1169;

/// Market segment code for `BUILDING` (TPC-H has five segments, 1–5).
pub const SEGMENT_BUILDING: u64 = 1;

/// The three Q3 tables at a given scale.
#[derive(Debug, Clone)]
pub struct TpchData {
    /// `customer`: key + market segment.
    pub customer: Customers,
    /// `orders`: key, customer key, order date, ship priority.
    pub orders: Orders,
    /// `lineitem`: order key, extended price (cents), discount (%),
    /// ship date.
    pub lineitem: Lineitems,
}

/// The `customer` columns Q3 reads.
#[derive(Debug, Clone)]
pub struct Customers {
    /// Customer keys, 1-based dense.
    pub custkey: Vec<u64>,
    /// Market segment code 1..=5 (uniform, as in TPC-H).
    pub mktsegment: Vec<u64>,
}

/// The `orders` columns Q3 reads.
#[derive(Debug, Clone)]
pub struct Orders {
    /// Order keys, 1-based dense.
    pub orderkey: Vec<u64>,
    /// Owning customer.
    pub custkey: Vec<u64>,
    /// Order date, day number in `0..2405` (1992-01-01 .. 1998-08-02).
    pub orderdate: Vec<u64>,
    /// Ship priority (always 0 in TPC-H; kept for output fidelity).
    pub shippriority: Vec<u64>,
}

/// The `lineitem` columns Q3 reads.
#[derive(Debug, Clone)]
pub struct Lineitems {
    /// Owning order.
    pub orderkey: Vec<u64>,
    /// Extended price in cents.
    pub extendedprice: Vec<u64>,
    /// Discount in percent points 0..=10.
    pub discount: Vec<u64>,
    /// Ship date, day number (order date + 1..=121).
    pub shipdate: Vec<u64>,
}

impl TpchData {
    /// Generate at `scale` (1.0 = TPC-H SF1: 150K customers, 1.5M orders,
    /// ~6M lineitems). The paper runs "default scale" on a testbed; our
    /// experiments default to `scale = 0.01`.
    pub fn generate(scale: f64, seed: u64) -> Self {
        assert!(scale > 0.0);
        let n_cust = ((150_000.0 * scale) as usize).max(10);
        let n_orders = n_cust * 10;
        let mut rng = rng_for(seed, "tpch");

        let customer = Customers {
            custkey: (1..=n_cust as u64).collect(),
            mktsegment: (0..n_cust).map(|_| rng.gen_range(1..=5u64)).collect(),
        };

        let mut orders = Orders {
            orderkey: (1..=n_orders as u64).collect(),
            custkey: Vec::with_capacity(n_orders),
            orderdate: Vec::with_capacity(n_orders),
            shippriority: vec![0; n_orders],
        };
        for _ in 0..n_orders {
            orders.custkey.push(rng.gen_range(1..=n_cust as u64));
            orders.orderdate.push(rng.gen_range(0..2_406u64));
        }

        // 1..=7 lineitems per order (TPC-H average ≈ 4).
        let mut lineitem = Lineitems {
            orderkey: Vec::new(),
            extendedprice: Vec::new(),
            discount: Vec::new(),
            shipdate: Vec::new(),
        };
        for (i, &ok) in orders.orderkey.iter().enumerate() {
            let items = rng.gen_range(1..=7usize);
            for _ in 0..items {
                lineitem.orderkey.push(ok);
                lineitem
                    .extendedprice
                    .push(rng.gen_range(10_000..1_000_000u64));
                lineitem.discount.push(rng.gen_range(0..=10u64));
                lineitem
                    .shipdate
                    .push(orders.orderdate[i] + rng.gen_range(1..=121u64));
            }
        }

        TpchData {
            customer,
            orders,
            lineitem,
        }
    }

    /// Revenue of one lineitem: `extendedprice·(1 − discount)`, in cents
    /// (integer arithmetic: `price·(100 − disc) / 100`).
    pub fn revenue_cents(extendedprice: u64, discount: u64) -> u64 {
        extendedprice * (100 - discount) / 100
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn shapes_scale_together() {
        let d = TpchData::generate(0.001, 1);
        let n_cust = d.customer.custkey.len();
        assert_eq!(n_cust, 150);
        assert_eq!(d.orders.orderkey.len(), n_cust * 10);
        let avg_items = d.lineitem.orderkey.len() as f64 / d.orders.orderkey.len() as f64;
        assert!((3.0..5.0).contains(&avg_items), "avg items {avg_items}");
    }

    #[test]
    fn referential_integrity() {
        let d = TpchData::generate(0.001, 2);
        let custs: HashSet<u64> = d.customer.custkey.iter().copied().collect();
        assert!(d.orders.custkey.iter().all(|c| custs.contains(c)));
        let orders: HashSet<u64> = d.orders.orderkey.iter().copied().collect();
        assert!(d.lineitem.orderkey.iter().all(|o| orders.contains(o)));
    }

    #[test]
    fn ship_after_order() {
        let d = TpchData::generate(0.001, 3);
        let order_date: std::collections::HashMap<u64, u64> = d
            .orders
            .orderkey
            .iter()
            .zip(&d.orders.orderdate)
            .map(|(&k, &v)| (k, v))
            .collect();
        for (ok, sd) in d.lineitem.orderkey.iter().zip(&d.lineitem.shipdate) {
            assert!(*sd > order_date[ok], "shipdate before orderdate");
        }
    }

    #[test]
    fn q3_selectivity_nontrivial() {
        // The Q3 filters must keep a meaningful but strict subset.
        let d = TpchData::generate(0.005, 4);
        let building = d
            .customer
            .mktsegment
            .iter()
            .filter(|&&s| s == SEGMENT_BUILDING)
            .count();
        let frac = building as f64 / d.customer.custkey.len() as f64;
        assert!((0.1..0.3).contains(&frac), "BUILDING fraction {frac}");
        let early_orders = d
            .orders
            .orderdate
            .iter()
            .filter(|&&dt| dt < Q3_CUT_DATE)
            .count();
        assert!(early_orders > 0 && early_orders < d.orders.orderkey.len());
    }

    #[test]
    fn revenue_arithmetic() {
        assert_eq!(TpchData::revenue_cents(10_000, 0), 10_000);
        assert_eq!(TpchData::revenue_cents(10_000, 10), 9_000);
        assert_eq!(TpchData::revenue_cents(999, 1), 989);
    }

    #[test]
    fn deterministic() {
        let a = TpchData::generate(0.001, 9);
        let b = TpchData::generate(0.001, 9);
        assert_eq!(a.lineitem.extendedprice, b.lineitem.extendedprice);
    }
}
