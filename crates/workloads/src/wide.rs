//! Wide-table workload: many columns, few referenced.
//!
//! The clickstream/telemetry schema shape that motivates projection
//! pushdown — 50–200 columns of which a typical query touches a handful.
//! The first two lanes are query-friendly (`c000` uniform over a small
//! selectivity-tunable domain, `c001` zipfian group keys); the rest are
//! uniform payload lanes a projected fetch should never materialize.
//!
//! Each column is generated from its own domain-separated RNG stream, so
//! widening the table never perturbs existing lanes: the 40-column and
//! 200-column tables agree on their shared prefix, which keeps narrow-vs-
//! wide bench comparisons apples-to-apples.

use rand::Rng;

use crate::dist::{rng_for, Zipf};

/// Generation knobs for [`WideTable`].
#[derive(Debug, Clone, Copy)]
pub struct WideTableConfig {
    /// Rows to generate.
    pub rows: usize,
    /// Total columns (the paper-adjacent sweep uses 50–200; min 2).
    pub cols: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WideTableConfig {
    fn default() -> Self {
        WideTableConfig {
            rows: 100_000,
            cols: 120,
            seed: 0,
        }
    }
}

/// A generated wide table: `cols` named u64 lanes of equal length.
#[derive(Debug, Clone)]
pub struct WideTable {
    /// Column names: `c000`, `c001`, … (zero-padded, schema order).
    pub names: Vec<String>,
    /// Column data, parallel to `names`.
    pub columns: Vec<Vec<u64>>,
}

impl WideTable {
    /// Generate per `config`.
    pub fn generate(config: WideTableConfig) -> Self {
        assert!(config.cols >= 2, "a wide table needs at least 2 columns");
        let n = config.rows;
        let key_dist = Zipf::new(64, 1.0);
        let mut names = Vec::with_capacity(config.cols);
        let mut columns = Vec::with_capacity(config.cols);
        for c in 0..config.cols {
            let name = format!("c{c:03}");
            let mut rng = rng_for(config.seed, &name);
            let data: Vec<u64> = match c {
                // The selectivity lane: predicates like `c000 < k` pick
                // k/1000 of the rows.
                0 => (0..n).map(|_| rng.gen_range(0..1000u64)).collect(),
                // The group-key lane: zipfian over 64 keys, nonzero.
                1 => (0..n)
                    .map(|_| key_dist.sample(&mut rng) as u64 + 1)
                    .collect(),
                // Payload lanes a projected fetch never touches.
                _ => (0..n).map(|_| rng.gen_range(0..u32::MAX as u64)).collect(),
            };
            names.push(name);
            columns.push(data);
        }
        WideTable { names, columns }
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Column count.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Consume into `(name, data)` pairs, ready for a columnar table
    /// constructor.
    pub fn into_columns(self) -> Vec<(String, Vec<u64>)> {
        self.names.into_iter().zip(self.columns).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_and_shaped() {
        let cfg = WideTableConfig {
            rows: 500,
            cols: 50,
            seed: 9,
        };
        let a = WideTable::generate(cfg);
        let b = WideTable::generate(cfg);
        assert_eq!(a.len(), 500);
        assert_eq!(a.width(), 50);
        assert_eq!(a.names[0], "c000");
        assert_eq!(a.names[49], "c049");
        assert_eq!(a.columns, b.columns, "same seed, same data");
        assert!(a.columns[0].iter().all(|&v| v < 1000));
        assert!(a.columns[1].iter().all(|&v| (1..=64).contains(&v)));
    }

    #[test]
    fn widening_preserves_the_shared_prefix() {
        let narrow = WideTable::generate(WideTableConfig {
            rows: 300,
            cols: 10,
            seed: 4,
        });
        let wide = WideTable::generate(WideTableConfig {
            rows: 300,
            cols: 40,
            seed: 4,
        });
        assert_eq!(narrow.columns[..10], wide.columns[..10]);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn too_narrow_rejected() {
        WideTable::generate(WideTableConfig {
            rows: 10,
            cols: 1,
            seed: 0,
        });
    }
}
