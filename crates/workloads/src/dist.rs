//! Seeded value distributions: Zipf and helpers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Zipf(`s`) sampler over ranks `0..n` via inverse-CDF table lookup.
///
/// Key-frequency skew drives most pruning rates (duplicate density for
/// DISTINCT, group sizes for GROUP BY/HAVING), so the generators default
/// to the classic `s ≈ 1` web-workload skew.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler for `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Sample a rank in `0..n` (rank 0 most frequent).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// A seeded RNG with a domain-separated stream per generator name, so
/// adding a generator never perturbs another's data.
pub fn rng_for(seed: u64, domain: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for b in domain.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_rank_zero_most_frequent() {
        let z = Zipf::new(100, 1.0);
        let mut rng = rng_for(1, "test");
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        // Rank 0 of Zipf(1) over 100 ranks carries ~19% of the mass.
        assert!((15_000..24_000).contains(&counts[0]), "got {}", counts[0]);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = rng_for(2, "test");
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_500..11_500).contains(&c), "non-uniform: {c}");
        }
    }

    #[test]
    fn zipf_samples_in_range() {
        let z = Zipf::new(5, 1.2);
        let mut rng = rng_for(3, "test");
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 5);
        }
    }

    #[test]
    fn rng_domains_are_independent() {
        let mut a = rng_for(7, "alpha");
        let mut b = rng_for(7, "beta");
        let av: u64 = a.gen();
        let bv: u64 = b.gen();
        assert_ne!(av, bv);
        // And reproducible.
        assert_eq!(rng_for(7, "alpha").gen::<u64>(), av);
    }
}
