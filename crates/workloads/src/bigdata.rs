//! The Big Data benchmark tables (Appendix B of the paper).
//!
//! `Rankings` has 3 columns and is *roughly sorted* on `pageRank` (the
//! paper permutes it before SKYLINE/filter experiments — see
//! [`crate::stream`]); `UserVisits` has 9 columns with zipfian
//! `userAgent`/`languageCode` and a long-tailed `adRevenue`. All values
//! are 64-bit: string columns are dictionary ranks, with renderers
//! ([`user_agent_string`], [`language_code_string`]) for display.
//! Revenue is in cents to stay integral (the paper's HAVING query
//! threshold "$1M" is `100_000_000` cents).

use rand::Rng;

use crate::dist::{rng_for, Zipf};

/// The `Rankings` table: `pageURL, pageRank, avgDuration`.
#[derive(Debug, Clone)]
pub struct Rankings {
    /// Unique page ids (stand-ins for URL strings).
    pub page_url: Vec<u64>,
    /// Page rank, roughly ascending (nearly sorted, as in the benchmark).
    pub page_rank: Vec<u64>,
    /// Average visit duration in seconds, uniform 1..200.
    pub avg_duration: Vec<u64>,
}

impl Rankings {
    /// Generate `n` rows (paper sample: 18M; default experiments use
    /// scaled-down sizes).
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut rng = rng_for(seed, "rankings");
        let mut page_rank: Vec<u64> = Vec::with_capacity(n);
        // Roughly sorted: monotone base plus small local jitter.
        for i in 0..n {
            let base = (i as u64) * 3;
            let jitter = rng.gen_range(0..50u64);
            page_rank.push(base + jitter);
        }
        let avg_duration = (0..n).map(|_| rng.gen_range(1..200u64)).collect();
        Rankings {
            page_url: (1..=n as u64).collect(),
            page_rank,
            avg_duration,
        }
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.page_url.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.page_url.is_empty()
    }
}

/// The `UserVisits` table (nine columns, as in the benchmark).
#[derive(Debug, Clone)]
pub struct UserVisits {
    /// Destination URL id; joins against `Rankings::page_url`.
    pub dest_url: Vec<u64>,
    /// Ad revenue in cents, long-tailed.
    pub ad_revenue: Vec<u64>,
    /// Language code rank (~25 distinct, zipfian). Nonzero.
    pub language_code: Vec<u64>,
    /// User agent rank (zipfian over `ua_distinct`). Nonzero.
    pub user_agent: Vec<u64>,
    /// Source IP (u32 space).
    pub source_ip: Vec<u64>,
    /// Visit date (days since epoch-ish).
    pub visit_date: Vec<u64>,
    /// Country code rank (~200 distinct). Nonzero.
    pub country_code: Vec<u64>,
    /// Search word rank (~10k distinct). Nonzero.
    pub search_word: Vec<u64>,
    /// Visit duration in seconds.
    pub duration: Vec<u64>,
}

/// Generation knobs for [`UserVisits`].
#[derive(Debug, Clone, Copy)]
pub struct UserVisitsConfig {
    /// Rows to generate (paper sample: 31.7M for Figure 5, 775M full).
    pub rows: usize,
    /// Distinct user agents (drives DISTINCT/GROUP BY pruning rates).
    pub ua_distinct: usize,
    /// Distinct URLs (drives the JOIN match rate).
    pub url_distinct: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UserVisitsConfig {
    fn default() -> Self {
        UserVisitsConfig {
            rows: 100_000,
            ua_distinct: 1_000,
            url_distinct: 20_000,
            seed: 0,
        }
    }
}

impl UserVisits {
    /// Generate per `config`.
    pub fn generate(config: UserVisitsConfig) -> Self {
        let n = config.rows;
        let mut rng = rng_for(config.seed, "uservisits");
        let ua_dist = Zipf::new(config.ua_distinct.max(1), 1.0);
        let lang_dist = Zipf::new(25, 1.0);
        let word_dist = Zipf::new(10_000, 1.05);
        let mut uv = UserVisits {
            dest_url: Vec::with_capacity(n),
            ad_revenue: Vec::with_capacity(n),
            language_code: Vec::with_capacity(n),
            user_agent: Vec::with_capacity(n),
            source_ip: Vec::with_capacity(n),
            visit_date: Vec::with_capacity(n),
            country_code: Vec::with_capacity(n),
            search_word: Vec::with_capacity(n),
            duration: Vec::with_capacity(n),
        };
        for _ in 0..n {
            uv.dest_url
                .push(rng.gen_range(1..=config.url_distinct.max(1) as u64));
            // Long tail: mostly cents, occasionally dollars-to-hundreds.
            let rev = if rng.gen_bool(0.02) {
                rng.gen_range(10_000..1_000_000u64)
            } else {
                rng.gen_range(1..10_000u64)
            };
            uv.ad_revenue.push(rev);
            uv.language_code.push(lang_dist.sample(&mut rng) as u64 + 1);
            uv.user_agent.push(ua_dist.sample(&mut rng) as u64 + 1);
            uv.source_ip.push(rng.gen_range(0..u64::from(u32::MAX)));
            uv.visit_date.push(rng.gen_range(10_000..12_000u64));
            uv.country_code.push(rng.gen_range(1..=200u64));
            uv.search_word.push(word_dist.sample(&mut rng) as u64 + 1);
            uv.duration.push(rng.gen_range(1..600u64));
        }
        uv
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.dest_url.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.dest_url.is_empty()
    }
}

/// Render a user-agent rank as a plausible string (for examples/display
/// and for exercising byte-wise fingerprints).
pub fn user_agent_string(rank: u64) -> String {
    format!(
        "Mozilla/5.0 (Agent-{rank}; rv:{}.0) Cheetah/{}",
        rank % 90,
        rank % 7
    )
}

/// Render a language-code rank as an ISO-ish code.
pub fn language_code_string(rank: u64) -> String {
    let a = (b'a' + ((rank / 26) % 26) as u8) as char;
    let b = (b'a' + (rank % 26) as u8) as char;
    format!("{a}{b}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn rankings_shape() {
        let r = Rankings::generate(10_000, 1);
        assert_eq!(r.len(), 10_000);
        assert!(!r.is_empty());
        // Unique URLs.
        let urls: HashSet<u64> = r.page_url.iter().copied().collect();
        assert_eq!(urls.len(), 10_000);
        // Roughly sorted: global trend upward, local inversions allowed.
        let inversions = r.page_rank.windows(2).filter(|w| w[0] > w[1]).count();
        assert!(inversions > 0, "should not be perfectly sorted");
        assert!(
            inversions < 5_000,
            "should be *nearly* sorted, got {inversions} inversions"
        );
        assert!(r.page_rank[9_999] > r.page_rank[0]);
    }

    #[test]
    fn uservisits_shape() {
        let uv = UserVisits::generate(UserVisitsConfig {
            rows: 20_000,
            ua_distinct: 100,
            url_distinct: 500,
            seed: 2,
        });
        assert_eq!(uv.len(), 20_000);
        let uas: HashSet<u64> = uv.user_agent.iter().copied().collect();
        assert!(uas.len() <= 100);
        assert!(uas.len() > 50, "zipf should still touch most ranks");
        assert!(uv.user_agent.iter().all(|&u| u != 0), "nonzero for switch");
        assert!(uv.language_code.iter().all(|&l| (1..=25).contains(&l)));
        let urls: HashSet<u64> = uv.dest_url.iter().copied().collect();
        assert!(urls.len() <= 500);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = UserVisits::generate(UserVisitsConfig::default());
        let b = UserVisits::generate(UserVisitsConfig::default());
        assert_eq!(a.user_agent, b.user_agent);
        assert_eq!(a.ad_revenue, b.ad_revenue);
    }

    #[test]
    fn revenue_long_tail() {
        let uv = UserVisits::generate(UserVisitsConfig {
            rows: 50_000,
            ..Default::default()
        });
        let big = uv.ad_revenue.iter().filter(|&&r| r >= 10_000).count();
        let frac = big as f64 / 50_000.0;
        assert!((0.01..0.04).contains(&frac), "tail fraction {frac}");
    }

    #[test]
    fn string_renderers() {
        assert_ne!(user_agent_string(1), user_agent_string(2));
        assert_eq!(language_code_string(0), "aa");
        assert_eq!(language_code_string(1), "ab");
        assert_eq!(language_code_string(26), "ba");
    }
}
