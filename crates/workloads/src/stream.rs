//! Stream-order utilities.
//!
//! The order entries reach the switch decides pruning rates: the paper's
//! theorems assume *random-order* streams, its worst case is a monotone
//! stream, and two benchmark columns are nearly sorted (the paper runs
//! those queries "on a random permutation of the table" — footnotes 8/9).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::dist::rng_for;

/// A seeded random permutation of `0..n` (row order for a shuffled scan).
pub fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut rng_for(seed, "permutation"));
    idx
}

/// Shuffle a column into random order (the paper's footnote treatment for
/// nearly-sorted inputs).
pub fn shuffled(values: &[u64], seed: u64) -> Vec<u64> {
    let mut v = values.to_vec();
    v.shuffle(&mut rng_for(seed, "shuffled"));
    v
}

/// A monotonically increasing stream — the adversarial worst case for
/// TOP N pruning (§5: "the switch must pass all entries").
pub fn monotone(n: usize) -> Vec<u64> {
    (1..=n as u64).collect()
}

/// A nearly sorted stream: ascending with a fraction of random swaps,
/// mimicking the benchmark's `pageRank` ordering.
pub fn nearly_sorted(n: usize, swap_fraction: f64, seed: u64) -> Vec<u64> {
    assert!((0.0..=1.0).contains(&swap_fraction));
    let mut v: Vec<u64> = (1..=n as u64).collect();
    let mut rng = rng_for(seed, "nearly-sorted");
    let swaps = ((n as f64) * swap_fraction) as usize;
    for _ in 0..swaps {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        v.swap(i, j);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_a_permutation() {
        let p = permutation(1000, 3);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
        assert_ne!(p, (0..1000).collect::<Vec<_>>(), "should actually shuffle");
    }

    #[test]
    fn shuffled_preserves_multiset() {
        let v = vec![5, 5, 1, 2, 9];
        let mut s = shuffled(&v, 1);
        s.sort_unstable();
        assert_eq!(s, vec![1, 2, 5, 5, 9]);
    }

    #[test]
    fn monotone_is_sorted() {
        let m = monotone(100);
        assert!(m.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn nearly_sorted_inversion_count_scales() {
        let inversions = |v: &[u64]| v.windows(2).filter(|w| w[0] > w[1]).count();
        let tame = nearly_sorted(10_000, 0.01, 5);
        let wild = nearly_sorted(10_000, 0.5, 5);
        assert!(inversions(&tame) < inversions(&wild));
        assert!(inversions(&tame) > 0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(permutation(50, 9), permutation(50, 9));
        assert_ne!(permutation(50, 9), permutation(50, 10));
    }
}
