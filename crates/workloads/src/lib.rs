//! # cheetah-workloads — evaluation datasets
//!
//! Seeded generators for the two benchmarks the paper evaluates on (§8.1):
//!
//! * the **Big Data benchmark** (the paper's reference \[3\]) —
//!   `rankings(pageURL, pageRank, avgDuration)` (roughly sorted on
//!   pageRank, hence the paper's random permutation footnotes) and
//!   `uservisits` with nine columns including `destURL`, `adRevenue`,
//!   `languageCode` and `userAgent` (zipfian);
//! * a **TPC-H subset** (reference \[2\]) — `customer`/`orders`/`lineitem`
//!   with the columns query Q3 touches, at a configurable scale factor;
//! * a **wide-table** workload ([`wide`]) — 50–200 columns of which a
//!   query references a handful, the schema shape that motivates
//!   projection pushdown.
//!
//! The paper's samples hold 31.7M uservisits / 18M rankings rows and TPC-H
//! at default scale; the generators reproduce the schema, key
//! cardinalities, skew and orderings at any row count, so the *fractional*
//! metrics (pruning rates, relative completion times) transfer (see
//! DESIGN.md on substitutions).
//!
//! # Examples
//!
//! Generators are seeded and reproducible:
//!
//! ```
//! use cheetah_workloads::bigdata::{UserVisits, UserVisitsConfig};
//!
//! let cfg = UserVisitsConfig { rows: 1_000, ua_distinct: 50, url_distinct: 100, seed: 7 };
//! let a = UserVisits::generate(cfg);
//! let b = UserVisits::generate(cfg);
//! assert_eq!(a.len(), 1_000);
//! assert_eq!(a.user_agent, b.user_agent, "same seed, same data");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bigdata;
pub mod dist;
pub mod stream;
pub mod tpch;
pub mod wide;

pub use bigdata::{Rankings, UserVisits};
pub use dist::Zipf;
pub use tpch::TpchData;
pub use wide::{WideTable, WideTableConfig};
