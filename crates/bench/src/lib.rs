//! Shared workload setup and formatting for the experiment harness and
//! the criterion benches. The per-figure experiment logic itself lives in
//! [`experiments`]; `src/bin/experiments.rs` is a thin CLI over it.

pub mod experiments;
pub mod streaming;

use cheetah_engine::{Database, Table};
use cheetah_workloads::bigdata::{Rankings, UserVisits, UserVisitsConfig};
use cheetah_workloads::stream::shuffled;

/// Standard scaled-down Big Data benchmark database.
///
/// `uv_rows`/`rk_rows` size the two tables; `join_match_fraction` controls
/// which fraction of `destURL`s exist in `rankings` (the paper's footnote
/// 10 uses ~10% for the JOIN evaluation).
pub fn bigdata_db(
    uv_rows: usize,
    rk_rows: usize,
    ua_distinct: usize,
    join_match_fraction: f64,
    seed: u64,
) -> Database {
    let rk = Rankings::generate(rk_rows, seed);
    let url_domain = (rk_rows as f64 / join_match_fraction.clamp(0.01, 1.0)) as usize;
    let uv = UserVisits::generate(UserVisitsConfig {
        rows: uv_rows,
        ua_distinct,
        url_distinct: url_domain,
        seed,
    });
    let mut db = Database::new();
    let mut rankings = Table::new(
        "rankings",
        vec![
            ("pageURL", rk.page_url.clone()),
            ("pageRank", rk.page_rank.clone()),
            ("avgDuration", rk.avg_duration.clone()),
        ],
    );
    rankings.add_column("pageRankShuffled", shuffled(&rk.page_rank, seed ^ 0x5ead));
    db.add(rankings);
    let mut visits = Table::new(
        "uservisits",
        vec![
            ("destURL", uv.dest_url.clone()),
            ("adRevenue", uv.ad_revenue.clone()),
            ("languageCode", uv.language_code.clone()),
            ("userAgent", uv.user_agent.clone()),
            ("sourceIP", uv.source_ip.clone()),
            ("visitDate", uv.visit_date.clone()),
            ("countryCode", uv.country_code.clone()),
            ("searchWord", uv.search_word.clone()),
            ("duration", uv.duration.clone()),
        ],
    );
    visits.add_column(
        "sourcePrefix",
        uv.source_ip.iter().map(|ip| (ip >> 20) + 1).collect(),
    );
    db.add(visits);
    db
}

/// Format an unpruned fraction the way the paper's log-scale plots read.
pub fn fmt_frac(f: f64) -> String {
    if f <= 0.0 {
        "0 (perfect)".to_string()
    } else if f >= 0.01 {
        format!("{f:.4}")
    } else {
        format!("{f:.2e}")
    }
}

/// Print a standard experiment header.
pub fn header(id: &str, title: &str, paper: &str) {
    println!("\n================================================================");
    println!("{id}: {title}");
    println!("paper reference: {paper}");
    println!("================================================================");
}
