//! Streaming-throughput measurement: the row-at-a-time legacy layout vs
//! the flat [`EntryStream`]/`process_block` hot path, plus per-query
//! engine throughput. Shared by the `streaming` criterion bench and the
//! `experiments -- --json` mode that writes `BENCH_streaming.json` — the
//! repo's checked-in performance trajectory.

use std::time::Instant;

use cheetah_core::decision::{PruneStats, RowPruner};
use cheetah_core::distinct::{DistinctPruner, EvictionPolicy};
use cheetah_core::filter::{Atom, CmpOp, FilterPruner, Formula};
use cheetah_core::groupby::{Extremum, GroupByPruner};
use cheetah_core::topn::RandomizedTopN;

use cheetah_engine::cheetah::{CheetahExecutor, PrunerConfig};
use cheetah_engine::serve::ServeExecutor;
use cheetah_engine::stream::EntryStream;
use cheetah_engine::{
    Agg, CostModel, Database, DistributedExecutor, Executor, FailurePlan, FetchSpec, Predicate,
    Query, ShardedExecutor, Table, ThreadedExecutor,
};

use cheetah_workloads::dist::rng_for;
use cheetah_workloads::wide::{WideTable, WideTableConfig};
use rand::Rng;

use crate::bigdata_db;

/// The streaming microbench operators (the ISSUE's ≥2× targets are
/// `filter`, `topn` and `groupby`; `distinct` rides along).
pub const MICRO_OPS: [&str; 4] = ["filter", "topn", "groupby", "distinct"];

/// A three-column table shaped like the pruning workloads: a bounded key
/// domain, a wide value domain, and a secondary value column.
pub fn micro_table(rows: usize, seed: u64) -> Table {
    let mut rng = rng_for(seed, "streaming-bench");
    Table::new(
        "stream",
        vec![
            (
                "k",
                (0..rows).map(|_| rng.gen_range(1..=10_000u64)).collect(),
            ),
            (
                "v",
                (0..rows).map(|_| rng.gen_range(1..=1_000_000u64)).collect(),
            ),
            ("w", (0..rows).map(|_| rng.gen_range(1..=500u64)).collect()),
        ],
    )
}

/// Metadata columns each operator streams (indices into [`micro_table`]).
pub fn micro_columns(op: &str) -> Vec<usize> {
    match op {
        "filter" => vec![1, 2],  // v, w
        "topn" => vec![1],       // ORDER BY v
        "groupby" => vec![0, 1], // key k, value v
        "distinct" => vec![0],   // k
        other => panic!("unknown micro op '{other}'"),
    }
}

/// A fresh pruner for the operator at Table 2-ish defaults.
pub fn micro_pruner(op: &str) -> Box<dyn RowPruner + Send> {
    match op {
        "filter" => Box::new(
            FilterPruner::new(
                vec![
                    Atom::cmp(0, CmpOp::Lt, 400_000),
                    Atom::cmp(1, CmpOp::Gt, 450),
                    Atom::cmp(0, CmpOp::Ne, 7),
                ],
                Formula::Or(vec![
                    Formula::Atom(0),
                    Formula::And(vec![Formula::Atom(1), Formula::Atom(2)]),
                ]),
            )
            .expect("filter compiles"),
        ),
        "topn" => Box::new(RandomizedTopN::new(4096, 4, 0)),
        "groupby" => Box::new(GroupByPruner::new(4096, 8, Extremum::Max, 0)),
        "distinct" => Box::new(DistinctPruner::new(4096, 2, EvictionPolicy::Lru, 0)),
        other => panic!("unknown micro op '{other}'"),
    }
}

/// The legacy hot path this refactor replaced: interleave into one heap
/// `Vec<u64>` per row, then drive the pruner row at a time. Kept here as
/// the criterion/JSON comparison baseline.
pub fn row_path(
    table: &Table,
    columns: &[usize],
    workers: usize,
    pruner: &mut dyn RowPruner,
) -> u64 {
    let bounds = table.partition_bounds(workers);
    let mut cursors: Vec<usize> = bounds.iter().map(|(s, _)| *s).collect();
    let mut entries: Vec<(u64, Vec<u64>)> = Vec::with_capacity(table.rows());
    let mut remaining = table.rows();
    while remaining > 0 {
        for (w, &(_, end)) in bounds.iter().enumerate() {
            if cursors[w] < end {
                let r = cursors[w];
                cursors[w] += 1;
                remaining -= 1;
                let vals = columns.iter().map(|&c| table.col_at(c)[r]).collect();
                entries.push((r as u64, vals));
            }
        }
    }
    let mut stats = PruneStats::default();
    for (_, vals) in &entries {
        stats.record(pruner.process_row(vals));
    }
    stats.forwarded()
}

/// The block path: flat [`EntryStream`] + `process_block`, identical
/// decisions to [`row_path`] for the same pruner state.
pub fn block_path(
    table: &Table,
    columns: &[usize],
    workers: usize,
    pruner: &mut dyn RowPruner,
) -> u64 {
    let stream = EntryStream::interleaved(table, columns, workers);
    let mut stats = PruneStats::default();
    let mut forwarded = 0u64;
    stream.prune(pruner, &mut stats, |_, _| forwarded += 1);
    debug_assert_eq!(forwarded, stats.forwarded());
    stats.forwarded()
}

/// One microbench comparison: best-of-`reps` wall clock per path.
#[derive(Debug, Clone)]
pub struct MicroResult {
    /// Operator name.
    pub op: String,
    /// Legacy layout throughput.
    pub row_rows_per_sec: f64,
    /// Block layout throughput.
    pub block_rows_per_sec: f64,
}

impl MicroResult {
    /// Block-over-row throughput ratio.
    pub fn speedup(&self) -> f64 {
        self.block_rows_per_sec / self.row_rows_per_sec
    }
}

fn best_of<F: FnMut() -> u64>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Run every microbench comparison at `rows` scale.
pub fn run_micro(rows: usize, reps: usize) -> Vec<MicroResult> {
    let table = micro_table(rows, 1);
    let workers = 5;
    MICRO_OPS
        .iter()
        .map(|op| {
            let cols = micro_columns(op);
            let row_s = best_of(reps, || {
                let mut p = micro_pruner(op);
                row_path(&table, &cols, workers, p.as_mut())
            });
            let block_s = best_of(reps, || {
                let mut p = micro_pruner(op);
                block_path(&table, &cols, workers, p.as_mut())
            });
            MicroResult {
                op: (*op).to_string(),
                row_rows_per_sec: rows as f64 / row_s,
                block_rows_per_sec: rows as f64 / block_s,
            }
        })
        .collect()
}

/// One engine query's measured streaming throughput.
#[derive(Debug, Clone)]
pub struct QueryBench {
    /// Query label.
    pub name: String,
    /// Entries the switch processed (all passes).
    pub entries: u64,
    /// Entries per second of wall clock (warm run, best of reps).
    pub rows_per_sec: f64,
    /// Fraction of entries the switch pruned.
    pub prune_rate: f64,
    /// Wall-clock seconds of the measured run.
    pub wall_s: f64,
}

/// The per-query engine benchmark: Big Data tables through the warm
/// `CheetahExecutor` (real pruning, measured wall clock).
pub fn run_queries(uv_rows: usize, reps: usize) -> Vec<QueryBench> {
    let db = bigdata_db(uv_rows, uv_rows / 5, 2_000, 0.5, 42);
    let exec = CheetahExecutor::new(CostModel::default(), PrunerConfig::default());
    let queries: Vec<(&str, Query)> = vec![
        (
            "filter_count",
            Query::FilterCount {
                table: "uservisits".into(),
                predicate: Predicate {
                    columns: vec!["adRevenue".into(), "duration".into()],
                    atoms: vec![
                        Atom::cmp(0, CmpOp::Lt, 1_000),
                        Atom::cmp(1, CmpOp::Gt, 5_000),
                    ],
                    formula: Formula::Or(vec![Formula::Atom(0), Formula::Atom(1)]),
                },
            },
        ),
        (
            "distinct",
            Query::Distinct {
                table: "uservisits".into(),
                column: "userAgent".into(),
            },
        ),
        (
            // The deterministic counterpart of the threaded
            // `distinct_multi` row: serial fingerprint lane + switch
            // dedup + master tuple dedup on one thread.
            "distinct_multi",
            Query::DistinctMulti {
                table: "uservisits".into(),
                columns: vec!["userAgent".into(), "languageCode".into()],
            },
        ),
        (
            "topn",
            Query::TopN {
                table: "uservisits".into(),
                order_by: "adRevenue".into(),
                n: 250,
            },
        ),
        (
            "groupby_max",
            Query::GroupBy {
                table: "uservisits".into(),
                key: "userAgent".into(),
                val: "adRevenue".into(),
                agg: Agg::Max,
            },
        ),
        (
            "groupby_sum",
            Query::GroupBy {
                table: "uservisits".into(),
                key: "sourcePrefix".into(),
                val: "adRevenue".into(),
                agg: Agg::Sum,
            },
        ),
        (
            "having",
            Query::Having {
                table: "uservisits".into(),
                key: "languageCode".into(),
                val: "adRevenue".into(),
                threshold: 2_000_000,
            },
        ),
        (
            "join",
            Query::Join {
                left: "uservisits".into(),
                right: "rankings".into(),
                left_col: "destURL".into(),
                right_col: "pageURL".into(),
            },
        ),
        (
            "skyline",
            Query::Skyline {
                table: "rankings".into(),
                columns: vec!["pageRankShuffled".into(), "avgDuration".into()],
            },
        ),
    ];
    queries
        .into_iter()
        .map(|(name, q)| {
            // Warm once (page in the tables), then take the best rep.
            let mut report = exec.execute(&db, &q);
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let t0 = Instant::now();
                report = std::hint::black_box(exec.execute(&db, &q));
                best = best.min(t0.elapsed().as_secs_f64());
            }
            let stats = report.prune_stats();
            QueryBench {
                name: name.to_string(),
                entries: stats.processed,
                rows_per_sec: stats.processed as f64 / best,
                prune_rate: stats.pruned_fraction(),
                wall_s: best,
            }
        })
        .collect()
}

/// One threaded multi-pass query's measured dataflow: the persistent
/// worker pool, staged pruners, watermark-driven phase flips.
#[derive(Debug, Clone)]
pub struct MultipassBench {
    /// Query label.
    pub name: String,
    /// Streaming passes over the data (JOIN/HAVING take two).
    pub passes: u32,
    /// Entries the switch decided (HAVING counts both passes; JOIN's
    /// build pass makes no decisions, so only the probe pass counts).
    pub entries: u64,
    /// Entries per second of measured wall clock (best of reps).
    pub rows_per_sec: f64,
    /// Measured wall-clock seconds of the whole threaded run.
    pub wall_s: f64,
    /// Per-pass switch spans (seconds) of the best run, from
    /// `ExecutionReport::pass_walls`.
    pub pass_walls: Vec<f64>,
}

/// The multi-pass query set for threaded measurements.
fn multipass_queries() -> Vec<(&'static str, Query)> {
    vec![
        (
            "join",
            Query::Join {
                left: "uservisits".into(),
                right: "rankings".into(),
                left_col: "destURL".into(),
                right_col: "pageURL".into(),
            },
        ),
        (
            "having",
            Query::Having {
                table: "uservisits".into(),
                key: "languageCode".into(),
                val: "adRevenue".into(),
                threshold: 2_000_000,
            },
        ),
        (
            "filter_fetch",
            Query::Filter {
                table: "uservisits".into(),
                predicate: Predicate {
                    columns: vec!["adRevenue".into()],
                    atoms: vec![Atom::cmp(0, CmpOp::Lt, 100)],
                    formula: Formula::Atom(0),
                },
            },
        ),
        (
            "distinct_multi",
            Query::DistinctMulti {
                table: "uservisits".into(),
                columns: vec!["userAgent".into(), "languageCode".into()],
            },
        ),
        (
            "groupby_sum",
            Query::GroupBy {
                table: "uservisits".into(),
                key: "sourcePrefix".into(),
                val: "adRevenue".into(),
                agg: Agg::Sum,
            },
        ),
    ]
}

/// Run `query` once warm plus `reps` more times through a wall-measuring
/// executor (threaded or sharded), returning the report with the
/// smallest measured wall and that wall in seconds.
fn best_measured_run<E: Executor>(
    exec: &E,
    db: &cheetah_engine::Database,
    query: &Query,
    reps: usize,
) -> (cheetah_engine::ExecutionReport, f64) {
    let mut report = exec.execute(db, query);
    let mut best = report.wall.expect("executor measures wall").as_secs_f64();
    for _ in 0..reps {
        let r = std::hint::black_box(exec.execute(db, query));
        let wall = r.wall.expect("executor measures wall").as_secs_f64();
        if wall < best {
            best = wall;
            report = r;
        }
    }
    (report, best)
}

/// The threaded multi-pass benchmark: JOIN, HAVING, Filter fetch,
/// DistinctMulti and GROUP BY SUM on the persistent worker pool, with
/// measured wall clock and per-pass switch spans.
pub fn run_threaded_multipass(uv_rows: usize, reps: usize) -> Vec<MultipassBench> {
    let db = bigdata_db(uv_rows, uv_rows / 5, 2_000, 0.5, 42);
    let exec = ThreadedExecutor::new(CheetahExecutor::new(
        CostModel::default(),
        PrunerConfig::default(),
    ));
    multipass_queries()
        .into_iter()
        .map(|(name, q)| {
            let (report, best) = best_measured_run(&exec, &db, &q, reps);
            let stats = report.prune_stats();
            MultipassBench {
                name: name.to_string(),
                passes: report.passes,
                entries: stats.processed,
                rows_per_sec: stats.processed as f64 / best,
                wall_s: best,
                pass_walls: report.pass_walls.iter().map(|w| w.as_secs_f64()).collect(),
            }
        })
        .collect()
}

/// One cell of the worker-count sweep.
#[derive(Debug, Clone)]
pub struct WorkerScaling {
    /// Query label (`join`, `having`, `distinct_multi`).
    pub name: String,
    /// Pool size this cell ran with.
    pub workers: usize,
    /// Entries per second of measured wall clock (best of reps).
    pub rows_per_sec: f64,
    /// Measured wall-clock seconds, best of reps.
    pub wall_s: f64,
}

/// Sweep the threaded pool size over {1, 2, 4} workers for the
/// pruning-heavy multi-pass shapes — the measured basis for the adaptive
/// worker-count knob (`ThreadedExecutor::with_adaptive_workers`).
pub fn run_worker_scaling(uv_rows: usize, reps: usize) -> Vec<WorkerScaling> {
    let db = bigdata_db(uv_rows, uv_rows / 5, 2_000, 0.5, 42);
    let sweep_queries: Vec<(&str, Query)> = multipass_queries()
        .into_iter()
        .filter(|(n, _)| matches!(*n, "join" | "having" | "distinct_multi"))
        .collect();
    let mut out = Vec::new();
    for workers in [1usize, 2, 4] {
        let exec = ThreadedExecutor::new(CheetahExecutor::new(
            CostModel {
                workers,
                ..CostModel::default()
            },
            PrunerConfig::default(),
        ));
        for (name, q) in &sweep_queries {
            let (report, best) = best_measured_run(&exec, &db, q, reps);
            out.push(WorkerScaling {
                name: (*name).to_string(),
                workers,
                rows_per_sec: report.prune_stats().processed as f64 / best,
                wall_s: best,
            });
        }
    }
    out
}

/// One cell of the shard-count sweep.
#[derive(Debug, Clone)]
pub struct ShardScaling {
    /// Query label (`join`, `groupby_sum`, `distinct_multi`).
    pub name: String,
    /// Shard count this cell ran with.
    pub shards: usize,
    /// Entries per second of measured wall clock (best of reps).
    pub rows_per_sec: f64,
    /// Measured wall-clock seconds, best of reps.
    pub wall_s: f64,
    /// Measured serial combine tail (seconds) of the best run, from
    /// `ExecutionReport::combine_wall` — only the master's result
    /// canonicalization after the reduction root yields, since the shard
    /// merges themselves overlap the switch phases.
    pub combine_wall_s: f64,
    /// Per-node reduction-tree merge spans (seconds) of the best run,
    /// from `ExecutionReport::merge_walls` (ascending node index). These
    /// overlap each other and the still-streaming shards, so their sum
    /// is tree work, not critical-path wall.
    pub merge_walls: Vec<f64>,
}

/// Sweep the sharded multi-switch executor over {1, 2, 4, 8} shards for
/// the combine-heavy shapes (`join`, `groupby_sum`, `distinct_multi`) —
/// the measured basis for shard-count planning (and the adaptive shard
/// knob, `ShardedExecutor::with_adaptive_shards`).
pub fn run_shard_scaling(uv_rows: usize, reps: usize) -> Vec<ShardScaling> {
    let db = bigdata_db(uv_rows, uv_rows / 5, 2_000, 0.5, 42);
    let sweep_queries: Vec<(&str, Query)> = multipass_queries()
        .into_iter()
        .filter(|(n, _)| matches!(*n, "join" | "groupby_sum" | "distinct_multi"))
        .collect();
    let mut out = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let exec = ShardedExecutor::with_shards(
            CheetahExecutor::new(CostModel::default(), PrunerConfig::default()),
            shards,
        );
        for (name, q) in &sweep_queries {
            let mut report = exec.execute(&db, q);
            let mut best = report.wall.expect("sharded measures wall").as_secs_f64();
            for _ in 0..reps {
                let r = std::hint::black_box(exec.execute(&db, q));
                let wall = r.wall.expect("sharded measures wall").as_secs_f64();
                if wall < best {
                    best = wall;
                    report = r;
                }
            }
            out.push(ShardScaling {
                name: (*name).to_string(),
                shards,
                rows_per_sec: report.prune_stats().processed as f64 / best,
                wall_s: best,
                combine_wall_s: report
                    .combine_wall
                    .expect("sharded measures the combine")
                    .as_secs_f64(),
                merge_walls: report.merge_walls.iter().map(|w| w.as_secs_f64()).collect(),
            });
        }
    }
    out
}

/// One cell of the cost-based planner sweep.
#[derive(Debug, Clone)]
pub struct PlannerCell {
    /// Query label (the threaded multipass shapes).
    pub name: String,
    /// Executor arm the planner chose.
    pub arm: String,
    /// Worker count the plan ran with.
    pub workers: usize,
    /// Shard count the plan ran with.
    pub shards: usize,
    /// The plan's predicted wall-clock seconds.
    pub predicted_wall_s: f64,
    /// Measured wall-clock seconds, best of reps.
    pub wall_s: f64,
    /// `measured / predicted` for the best run — the planner's
    /// estimate-vs-actual honesty number.
    pub misprediction: f64,
    /// Entries per second of measured wall clock (best of reps).
    pub rows_per_sec: f64,
}

/// Sweep the cost-based planner over every threaded multipass shape: the
/// planner probes, races its candidate arms, executes the winner, and
/// reports predicted vs measured wall. `scripts/bench_check.sh` gates
/// the chosen arm's wall against the best static arm from the
/// `worker_scaling[]`/`shard_scaling[]` sweeps.
pub fn run_planner_sweep(uv_rows: usize, reps: usize) -> Vec<PlannerCell> {
    let db = bigdata_db(uv_rows, uv_rows / 5, 2_000, 0.5, 42);
    let exec = cheetah_engine::PlannerExecutor::new(CheetahExecutor::new(
        CostModel::default(),
        PrunerConfig::default(),
    ));
    multipass_queries()
        .into_iter()
        .map(|(name, q)| {
            let (report, best) = best_measured_run(&exec, &db, &q, reps);
            let plan = report.plan.clone().expect("planner reports its plan");
            PlannerCell {
                name: name.to_string(),
                arm: plan.arm.to_string(),
                workers: plan.workers,
                shards: plan.shards,
                predicted_wall_s: plan.predicted_s,
                wall_s: best,
                misprediction: plan.misprediction(),
                rows_per_sec: report.prune_stats().processed as f64 / best,
            }
        })
        .collect()
}

/// One cell of the wire-protocol resilience sweep.
#[derive(Debug, Clone)]
pub struct NetResilience {
    /// Query label (`join`, `groupby_sum`, `distinct_multi`).
    pub name: String,
    /// Injected per-hop packet loss rate this cell ran with.
    pub loss_rate: f64,
    /// Entries per second of measured wall clock (best of reps).
    pub rows_per_sec: f64,
    /// Measured wall-clock seconds, best of reps.
    pub wall_s: f64,
    /// Whole-shard session retries the loss forced (best run).
    pub retries: u64,
    /// Packet retransmissions inside sessions (best run).
    pub retransmissions: u64,
    /// Total shard ship sessions, including retries (best run).
    pub ship_attempts: u64,
}

/// Sweep the distributed executor over loss ∈ {0, 0.05, 0.2} for the
/// combine-heavy shapes: the cost of running shard results over the §7.2
/// reliability protocol, and what packet loss does to it. Results are
/// asserted exact against the deterministic path inside the executor's
/// test suite; here we only measure.
pub fn run_net_resilience(uv_rows: usize, reps: usize) -> Vec<NetResilience> {
    let db = bigdata_db(uv_rows, uv_rows / 5, 2_000, 0.5, 42);
    let sweep_queries: Vec<(&str, Query)> = multipass_queries()
        .into_iter()
        .filter(|(n, _)| matches!(*n, "join" | "groupby_sum" | "distinct_multi"))
        .collect();
    let mut out = Vec::new();
    for loss in [0.0f64, 0.05, 0.2] {
        let plan = FailurePlan {
            loss_rate: loss,
            seed: 42,
            ..FailurePlan::default()
        };
        let exec = DistributedExecutor::with_failure_plan(
            CheetahExecutor::new(CostModel::default(), PrunerConfig::default()),
            2,
            plan,
        );
        for (name, q) in &sweep_queries {
            let (report, best) = best_measured_run(&exec, &db, q, reps);
            let res = report
                .resilience
                .as_ref()
                .expect("distributed runs report resilience");
            out.push(NetResilience {
                name: (*name).to_string(),
                loss_rate: loss,
                rows_per_sec: report.prune_stats().processed as f64 / best,
                wall_s: best,
                retries: res.retries,
                retransmissions: res.retransmissions,
                ship_attempts: res.ship_attempts,
            });
        }
    }
    out
}

/// One cell of the concurrent-serving sweep.
#[derive(Debug, Clone)]
pub struct ServingCell {
    /// Queries admitted in the batch (the concurrency level N).
    pub concurrent: usize,
    /// Aggregate queries per second of the best measured batch.
    pub queries_per_sec: f64,
    /// Cache hit rate of the best measured batch. The executor is warmed
    /// with one prior admission of the same mix, so every repeated
    /// HAVING/JOIN predicate in the measured run replays cached filter
    /// state deterministically (1.0 once the mix contains cacheable
    /// shapes, 0.0 at N=1 where it doesn't).
    pub cache_hit_rate: f64,
    /// Queries that shared a packed scan.
    pub packed: u64,
    /// Queries dispatched solo (includes spills).
    pub solo: u64,
    /// Shareable queries the switch budget rejected.
    pub spilled: u64,
    /// Shared switch passes the batch collapsed into.
    pub shared_scans: u64,
    /// Measured wall-clock seconds of the best batch.
    pub wall_s: f64,
}

/// The repeated-predicate serving mix: four shareable single-pass shapes
/// on `uservisits` plus the two cacheable two-pass shapes, cycled to the
/// batch size — so any N ≥ 8 re-admits every predicate at least once.
fn serving_mix() -> Vec<Query> {
    vec![
        Query::FilterCount {
            table: "uservisits".into(),
            predicate: Predicate {
                columns: vec!["adRevenue".into(), "duration".into()],
                atoms: vec![
                    Atom::cmp(0, CmpOp::Lt, 1_000),
                    Atom::cmp(1, CmpOp::Gt, 5_000),
                ],
                formula: Formula::Or(vec![Formula::Atom(0), Formula::Atom(1)]),
            },
        },
        Query::Distinct {
            table: "uservisits".into(),
            column: "userAgent".into(),
        },
        Query::TopN {
            table: "uservisits".into(),
            order_by: "adRevenue".into(),
            n: 250,
        },
        Query::GroupBy {
            table: "uservisits".into(),
            key: "userAgent".into(),
            val: "adRevenue".into(),
            agg: Agg::Max,
        },
        Query::Having {
            table: "uservisits".into(),
            key: "languageCode".into(),
            val: "adRevenue".into(),
            threshold: 2_000_000,
        },
        Query::Join {
            left: "uservisits".into(),
            right: "rankings".into(),
            left_col: "destURL".into(),
            right_col: "pageURL".into(),
        },
    ]
}

/// Sweep the serving layer over N ∈ {1, 8, 32, 128} concurrent queries of
/// the repeated-predicate mix: one admission per batch, packed shapes
/// sharing scans, cacheable shapes replaying warmed filter state, the
/// rest on the dispatch pool. Each cell is the best of `reps` measured
/// batches on a warmed executor.
pub fn run_concurrent_serving(uv_rows: usize, reps: usize) -> Vec<ServingCell> {
    let db = bigdata_db(uv_rows, uv_rows / 5, 2_000, 0.5, 42);
    let mix = serving_mix();
    let mut out = Vec::new();
    for n in [1usize, 8, 32, 128] {
        let batch: Vec<Query> = (0..n).map(|i| mix[i % mix.len()].clone()).collect();
        let exec = ServeExecutor::with_pool(
            CheetahExecutor::new(CostModel::default(), PrunerConfig::default()),
            4,
        );
        // Warm run: faults in the tables and populates the filter cache,
        // so the measured reps have deterministic hit rates.
        exec.serve(&db, &batch);
        let (_, mut best) = exec.serve(&db, &batch);
        for _ in 1..reps {
            let (_, agg) = exec.serve(&db, &batch);
            if agg.wall < best.wall {
                best = agg;
            }
        }
        out.push(ServingCell {
            concurrent: n,
            queries_per_sec: best.queries_per_sec(),
            cache_hit_rate: best.cache_hit_rate(),
            packed: best.packed,
            solo: best.solo,
            spilled: best.spilled,
            shared_scans: best.shared_scans,
            wall_s: best.wall.as_secs_f64(),
        });
    }
    out
}

/// One projection-pushdown cell: a Filter-with-fetch run on a narrow or
/// wide table under the full-row vs referenced-lanes fetch projection.
#[derive(Debug, Clone)]
pub struct ProjectionCell {
    /// Workload label (`narrow` / `wide`).
    pub workload: String,
    /// Fetch mode (`full` / `pruned`).
    pub mode: String,
    /// Total table columns.
    pub table_cols: usize,
    /// Columns the fetch actually materialized (the projection width).
    pub referenced_cols: usize,
    /// Rows the §7.1 late materialization fetched.
    pub fetch_rows: u64,
    /// Bytes the fetch materialized: `fetch_rows × projection width × 8`
    /// (analytic, machine-independent).
    pub bytes_materialized: u64,
    /// Table rows per second of wall clock (best of reps).
    pub rows_per_sec: f64,
    /// Wall-clock seconds of the measured run.
    pub wall_s: f64,
}

/// A `Database` holding one wide table named `wide`.
fn wide_db(rows: usize, cols: usize, seed: u64) -> Database {
    let wt = WideTable::generate(WideTableConfig { rows, cols, seed });
    let names = wt.names.clone();
    let pairs: Vec<(&str, Vec<u64>)> = names.iter().map(String::as_str).zip(wt.columns).collect();
    let mut db = Database::new();
    db.add(Table::new("wide", pairs));
    db
}

/// The projection-pushdown benchmark: the same fetch-heavy Filter
/// (two referenced columns, ~60% selective, so the §7.1 fetch dominates)
/// over a narrow and a wide table, under [`FetchSpec::All`] (the seed
/// behavior: every lane materializes) and [`FetchSpec::Referenced`]
/// (only the lanes the query touches). Row ids are asserted identical
/// across modes — projection changes what the fetch carries, never the
/// result.
pub fn run_projection_pushdown(rows: usize, reps: usize) -> Vec<ProjectionCell> {
    let query = Query::Filter {
        table: "wide".into(),
        predicate: Predicate {
            columns: vec!["c000".into(), "c001".into()],
            atoms: vec![Atom::cmp(0, CmpOp::Lt, 600), Atom::cmp(1, CmpOp::Le, 48)],
            formula: Formula::And(vec![Formula::Atom(0), Formula::Atom(1)]),
        },
    };
    let mut out = Vec::new();
    for (workload, table_cols) in [("narrow", 8usize), ("wide", 120usize)] {
        let db = wide_db(rows, table_cols, 11);
        let t = db.table("wide");
        let mut results = Vec::new();
        for (mode, spec) in [("full", FetchSpec::All), ("pruned", FetchSpec::Referenced)] {
            let exec = CheetahExecutor::new(
                CostModel::default(),
                PrunerConfig {
                    fetch: spec.clone(),
                    ..PrunerConfig::default()
                },
            );
            let mut fetch_rows = 0u64;
            let wall = best_of(reps, || {
                let report = exec.execute(&db, &query);
                fetch_rows = report.fetch_rows;
                results.push(report.result);
                fetch_rows
            });
            let proj = query.projection(t, &spec);
            out.push(ProjectionCell {
                workload: workload.to_string(),
                mode: mode.to_string(),
                table_cols,
                referenced_cols: proj.width(),
                fetch_rows,
                bytes_materialized: fetch_rows * proj.bytes_per_row(),
                rows_per_sec: rows as f64 / wall,
                wall_s: wall,
            });
        }
        assert!(
            results.windows(2).all(|w| w[0] == w[1]),
            "projection changed the Filter result on the {workload} table"
        );
    }
    out
}

/// Render the benchmark snapshot as JSON (no external deps: the format is
/// flat enough to emit by hand).
#[allow(clippy::too_many_arguments)] // one slice per snapshot section
pub fn to_json(
    rows: usize,
    micro: &[MicroResult],
    queries: &[QueryBench],
    multipass: &[MultipassBench],
    scaling: &[WorkerScaling],
    shard_scaling: &[ShardScaling],
    planner: &[PlannerCell],
    net_resilience: &[NetResilience],
    concurrent_serving: &[ServingCell],
    projection_pushdown: &[ProjectionCell],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"streaming\",\n");
    out.push_str(&format!("  \"micro_rows\": {rows},\n"));
    out.push_str("  \"microbench\": [\n");
    for (i, m) in micro.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"op\": \"{}\", \"row_rows_per_sec\": {:.0}, \"block_rows_per_sec\": {:.0}, \"speedup\": {:.2}}}{}\n",
            m.op,
            m.row_rows_per_sec,
            m.block_rows_per_sec,
            m.speedup(),
            if i + 1 < micro.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"queries\": [\n");
    for (i, q) in queries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"entries\": {}, \"rows_per_sec\": {:.0}, \"prune_rate\": {:.4}, \"wall_s\": {:.6}}}{}\n",
            q.name,
            q.entries,
            q.rows_per_sec,
            q.prune_rate,
            q.wall_s,
            if i + 1 < queries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"threaded_multipass\": [\n");
    for (i, q) in multipass.iter().enumerate() {
        let walls = q
            .pass_walls
            .iter()
            .map(|w| format!("{w:.6}"))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"passes\": {}, \"entries\": {}, \"rows_per_sec\": {:.0}, \"wall_s\": {:.6}, \"pass_walls\": [{}]}}{}\n",
            q.name,
            q.passes,
            q.entries,
            q.rows_per_sec,
            q.wall_s,
            walls,
            if i + 1 < multipass.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"worker_scaling\": [\n");
    for (i, c) in scaling.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"workers\": {}, \"rows_per_sec\": {:.0}, \"wall_s\": {:.6}}}{}\n",
            c.name,
            c.workers,
            c.rows_per_sec,
            c.wall_s,
            if i + 1 < scaling.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"shard_scaling\": [\n");
    for (i, c) in shard_scaling.iter().enumerate() {
        let merges = c
            .merge_walls
            .iter()
            .map(|w| format!("{w:.6}"))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"shards\": {}, \"rows_per_sec\": {:.0}, \"wall_s\": {:.6}, \"combine_wall_s\": {:.6}, \"merge_walls\": [{}]}}{}\n",
            c.name,
            c.shards,
            c.rows_per_sec,
            c.wall_s,
            c.combine_wall_s,
            merges,
            if i + 1 < shard_scaling.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"planner\": [\n");
    for (i, c) in planner.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"arm\": \"{}\", \"workers\": {}, \"shards\": {}, \"predicted_wall_s\": {:.6}, \"wall_s\": {:.6}, \"misprediction\": {:.3}, \"rows_per_sec\": {:.0}}}{}\n",
            c.name,
            c.arm,
            c.workers,
            c.shards,
            c.predicted_wall_s,
            c.wall_s,
            c.misprediction,
            c.rows_per_sec,
            if i + 1 < planner.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"net_resilience\": [\n");
    for (i, c) in net_resilience.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"loss_rate\": {:.2}, \"rows_per_sec\": {:.0}, \"wall_s\": {:.6}, \"retries\": {}, \"retransmissions\": {}, \"ship_attempts\": {}}}{}\n",
            c.name,
            c.loss_rate,
            c.rows_per_sec,
            c.wall_s,
            c.retries,
            c.retransmissions,
            c.ship_attempts,
            if i + 1 < net_resilience.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"concurrent_serving\": [\n");
    for (i, c) in concurrent_serving.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"concurrent\": {}, \"queries_per_sec\": {:.0}, \"cache_hit_rate\": {:.4}, \"packed\": {}, \"solo\": {}, \"spilled\": {}, \"shared_scans\": {}, \"wall_s\": {:.6}}}{}\n",
            c.concurrent,
            c.queries_per_sec,
            c.cache_hit_rate,
            c.packed,
            c.solo,
            c.spilled,
            c.shared_scans,
            c.wall_s,
            if i + 1 < concurrent_serving.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"projection_pushdown\": [\n");
    for (i, c) in projection_pushdown.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"mode\": \"{}\", \"table_cols\": {}, \"referenced_cols\": {}, \"fetch_rows\": {}, \"bytes_materialized\": {}, \"rows_per_sec\": {:.0}, \"wall_s\": {:.6}}}{}\n",
            c.workload,
            c.mode,
            c.table_cols,
            c.referenced_cols,
            c.fetch_rows,
            c.bytes_materialized,
            c.rows_per_sec,
            c.wall_s,
            if i + 1 < projection_pushdown.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// Run the full streaming benchmark and write `path` (the `--json` mode).
/// Returns the rendered JSON for display. The schema is documented in
/// `docs/BENCHMARKS.md`.
pub fn write_bench_json(path: &str) -> std::io::Result<String> {
    let micro_rows = 400_000;
    let micro = run_micro(micro_rows, 3);
    let queries = run_queries(200_000, 3);
    let multipass = run_threaded_multipass(200_000, 3);
    let scaling = run_worker_scaling(200_000, 3);
    let shard_scaling = run_shard_scaling(200_000, 3);
    let planner = run_planner_sweep(200_000, 3);
    let net_resilience = run_net_resilience(100_000, 3);
    let concurrent_serving = run_concurrent_serving(100_000, 3);
    let projection = run_projection_pushdown(60_000, 3);
    let json = to_json(
        micro_rows,
        &micro,
        &queries,
        &multipass,
        &scaling,
        &shard_scaling,
        &planner,
        &net_resilience,
        &concurrent_serving,
        &projection,
    );
    std::fs::write(path, &json)?;
    Ok(json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_and_block_paths_forward_identically() {
        let table = micro_table(20_000, 3);
        for op in MICRO_OPS {
            let cols = micro_columns(op);
            let mut a = micro_pruner(op);
            let mut b = micro_pruner(op);
            assert_eq!(
                row_path(&table, &cols, 5, a.as_mut()),
                block_path(&table, &cols, 5, b.as_mut()),
                "{op}: layouts must forward the same entries"
            );
        }
    }

    #[test]
    fn json_snapshot_is_well_formed() {
        let micro = run_micro(5_000, 1);
        let queries = run_queries(5_000, 1);
        let multipass = run_threaded_multipass(5_000, 1);
        let scaling = run_worker_scaling(5_000, 1);
        let shard_scaling = run_shard_scaling(5_000, 1);
        let planner = run_planner_sweep(5_000, 1);
        let net_resilience = run_net_resilience(5_000, 1);
        let concurrent_serving = run_concurrent_serving(5_000, 1);
        let projection = run_projection_pushdown(5_000, 1);
        let json = to_json(
            5_000,
            &micro,
            &queries,
            &multipass,
            &scaling,
            &shard_scaling,
            &planner,
            &net_resilience,
            &concurrent_serving,
            &projection,
        );
        assert!(json.contains("\"microbench\""));
        assert!(json.contains("\"queries\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"threaded_multipass\""));
        assert!(json.contains("\"worker_scaling\""));
        assert!(json.contains("\"shard_scaling\""));
        assert!(json.contains("\"net_resilience\""));
        assert!(json.contains("\"loss_rate\""));
        assert!(json.contains("\"ship_attempts\""));
        assert!(json.contains("\"concurrent_serving\""));
        assert!(json.contains("\"cache_hit_rate\""));
        assert!(json.contains("\"shared_scans\""));
        assert!(json.contains("\"projection_pushdown\""));
        assert!(json.contains("\"bytes_materialized\""));
        for cell in ["narrow", "wide"].iter().flat_map(|w| {
            ["full", "pruned"]
                .iter()
                .map(move |m| format!("\"workload\": \"{w}\", \"mode\": \"{m}\""))
        }) {
            assert!(json.contains(&cell), "missing projection cell {cell}");
        }
        for n in [1usize, 8, 32, 128] {
            assert!(
                json.contains(&format!("\"concurrent\": {n}, \"queries_per_sec\"")),
                "missing concurrent_serving cell for N={n}"
            );
        }
        assert!(json.contains("\"combine_wall_s\""));
        assert!(json.contains("\"merge_walls\""));
        assert!(json.contains("\"pass_walls\""));
        // Balanced braces/brackets — cheap structural sanity.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for op in MICRO_OPS {
            assert!(json.contains(&format!("\"op\": \"{op}\"")));
        }
        assert!(
            json.contains("\"name\": \"distinct_multi\", \"entries\""),
            "deterministic queries[] must carry the distinct_multi counterpart"
        );
        for name in [
            "join",
            "having",
            "filter_fetch",
            "distinct_multi",
            "groupby_sum",
        ] {
            assert!(
                json.contains(&format!("\"name\": \"{name}\", \"passes\"")),
                "missing threaded multipass row for {name}"
            );
            assert!(
                json.contains(&format!("\"name\": \"{name}\", \"arm\"")),
                "missing planner row for {name}"
            );
        }
        assert!(json.contains("\"planner\""));
        assert!(json.contains("\"predicted_wall_s\""));
        assert!(json.contains("\"misprediction\""));
    }

    #[test]
    fn planner_sweep_covers_every_shape_with_finite_mispredictions() {
        let cells = run_planner_sweep(3_000, 1);
        assert_eq!(cells.len(), 5, "one planner cell per multipass shape");
        for cell in &cells {
            assert!(
                matches!(
                    cell.name.as_str(),
                    "join" | "having" | "filter_fetch" | "distinct_multi" | "groupby_sum"
                ),
                "unexpected sweep query {}",
                cell.name
            );
            assert!(
                matches!(
                    cell.arm.as_str(),
                    "deterministic" | "threaded" | "sharded" | "distributed"
                ),
                "{}: unknown arm {}",
                cell.name,
                cell.arm
            );
            assert!([1, 2, 4, 8].contains(&cell.workers), "{}", cell.name);
            assert!([1, 2, 4, 8].contains(&cell.shards), "{}", cell.name);
            assert!(
                cell.wall_s > 0.0 && cell.rows_per_sec > 0.0,
                "{}",
                cell.name
            );
            assert!(
                cell.predicted_wall_s > 0.0 && cell.predicted_wall_s.is_finite(),
                "{}: predicted wall must be positive and finite",
                cell.name
            );
            assert!(
                cell.misprediction > 0.0 && cell.misprediction.is_finite(),
                "{}: misprediction must be positive and finite",
                cell.name
            );
        }
    }

    #[test]
    fn threaded_multipass_bench_measures_real_walls() {
        for b in run_threaded_multipass(4_000, 1) {
            assert!(b.wall_s > 0.0, "{}: wall clock must be measured", b.name);
            assert!(b.entries > 0, "{}: switch must process entries", b.name);
            let expected_passes = if b.name == "join" || b.name == "having" {
                2
            } else {
                1
            };
            assert_eq!(b.passes, expected_passes, "{}: pass count", b.name);
            assert_eq!(
                b.pass_walls.len(),
                b.passes as usize,
                "{}: one switch span per pass",
                b.name
            );
            assert!(
                b.pass_walls.iter().all(|&w| w > 0.0),
                "{}: pass spans must be measured",
                b.name
            );
        }
    }

    #[test]
    fn worker_scaling_sweeps_the_advertised_grid() {
        let cells = run_worker_scaling(3_000, 1);
        assert_eq!(cells.len(), 9, "3 worker counts × 3 queries");
        for cell in &cells {
            assert!([1, 2, 4].contains(&cell.workers));
            assert!(
                matches!(cell.name.as_str(), "join" | "having" | "distinct_multi"),
                "unexpected sweep query {}",
                cell.name
            );
            assert!(cell.wall_s > 0.0 && cell.rows_per_sec > 0.0);
        }
    }

    #[test]
    fn net_resilience_sweeps_the_advertised_grid() {
        let cells = run_net_resilience(3_000, 1);
        assert_eq!(cells.len(), 9, "3 loss rates × 3 queries");
        for cell in &cells {
            assert!([0.0, 0.05, 0.2].contains(&cell.loss_rate));
            assert!(
                matches!(
                    cell.name.as_str(),
                    "join" | "groupby_sum" | "distinct_multi"
                ),
                "unexpected sweep query {}",
                cell.name
            );
            assert!(cell.wall_s > 0.0 && cell.rows_per_sec > 0.0);
            assert!(cell.ship_attempts >= 1, "shipping must be accounted");
            if cell.loss_rate == 0.0 {
                assert_eq!(
                    cell.retransmissions, 0,
                    "{}: clean wire must not retransmit",
                    cell.name
                );
            }
        }
    }

    #[test]
    fn concurrent_serving_sweeps_the_advertised_grid() {
        let cells = run_concurrent_serving(3_000, 1);
        assert_eq!(cells.len(), 4, "N ∈ {{1, 8, 32, 128}}");
        for cell in &cells {
            assert!([1, 8, 32, 128].contains(&cell.concurrent));
            assert!(
                cell.wall_s > 0.0 && cell.queries_per_sec > 0.0,
                "N={}: batch wall must be measured",
                cell.concurrent
            );
            assert_eq!(
                cell.packed + cell.solo,
                cell.concurrent as u64,
                "N={}: admission must partition the batch",
                cell.concurrent
            );
            if cell.concurrent == 1 {
                assert_eq!(cell.packed, 0, "a batch of one has nothing to pack");
                assert_eq!(cell.cache_hit_rate, 0.0, "the N=1 shape is not cacheable");
            } else {
                assert!(
                    cell.packed >= 2 && cell.shared_scans >= 1,
                    "N={}: the mix's single-pass shapes must share a scan: {cell:?}",
                    cell.concurrent
                );
                assert!(
                    cell.cache_hit_rate > 0.99,
                    "N={}: warmed repeated predicates must replay cached state \
                     (got {})",
                    cell.concurrent,
                    cell.cache_hit_rate
                );
            }
        }
    }

    #[test]
    fn projection_pushdown_sweeps_the_advertised_grid() {
        let cells = run_projection_pushdown(3_000, 1);
        assert_eq!(cells.len(), 4, "2 workloads × 2 fetch modes");
        for cell in &cells {
            assert!(
                matches!(cell.workload.as_str(), "narrow" | "wide"),
                "unexpected workload {}",
                cell.workload
            );
            assert!(cell.wall_s > 0.0 && cell.rows_per_sec > 0.0);
            assert!(cell.fetch_rows > 0, "the Filter must fetch survivors");
            match cell.mode.as_str() {
                "full" => assert_eq!(cell.referenced_cols, cell.table_cols),
                "pruned" => assert_eq!(cell.referenced_cols, 2, "c000 and c001"),
                other => panic!("unexpected fetch mode {other}"),
            }
        }
        let bytes = |w: &str, m: &str| {
            cells
                .iter()
                .find(|c| c.workload == w && c.mode == m)
                .expect("cell present")
                .bytes_materialized
        };
        // Same survivors either way, so the ratio is exactly the column
        // ratio: 120/2 on the wide table — far past the 4× floor.
        assert!(
            bytes("wide", "pruned") * 4 <= bytes("wide", "full"),
            "wide-table pruning must cut materialized bytes at least 4×"
        );
        assert_eq!(bytes("wide", "full") / bytes("wide", "pruned"), 60);
        assert!(bytes("narrow", "pruned") * 4 <= bytes("narrow", "full"));
    }

    #[test]
    fn shard_scaling_sweeps_the_advertised_grid_with_combine_walls() {
        let cells = run_shard_scaling(3_000, 1);
        assert_eq!(cells.len(), 12, "4 shard counts × 3 queries");
        for cell in &cells {
            assert!([1, 2, 4, 8].contains(&cell.shards));
            if cell.shards == 1 {
                assert!(cell.merge_walls.is_empty(), "one shard merges nothing");
            } else {
                assert!(
                    !cell.merge_walls.is_empty(),
                    "{} @ {} shards: tree merges must be measured",
                    cell.name,
                    cell.shards
                );
            }
            assert!(
                matches!(
                    cell.name.as_str(),
                    "join" | "groupby_sum" | "distinct_multi"
                ),
                "unexpected sweep query {}",
                cell.name
            );
            assert!(cell.wall_s > 0.0 && cell.rows_per_sec > 0.0);
            assert!(
                cell.combine_wall_s >= 0.0 && cell.combine_wall_s < cell.wall_s,
                "{} @ {} shards: combine span must be measured and inside \
                 the query wall",
                cell.name,
                cell.shards
            );
        }
    }
}
