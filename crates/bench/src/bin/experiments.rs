//! CLI driving the per-figure experiment functions.
//!
//! ```sh
//! cargo run --release -p cheetah-bench --bin experiments -- all
//! cargo run --release -p cheetah-bench --bin experiments -- fig10c fig10e
//! ```

use cheetah_bench::experiments as exp;

const USAGE: &str = "usage: experiments <id>… | all | --json [path]\n\
     ids: table2 table3 fig5 fig6a fig6b fig7 fig8 fig9 \
     fig10a fig10b fig10c fig10d fig10e fig10f \
     fig11a fig11b fig11c fig11d fig11e fig11f fig12 fig13 ext\n\
     --json: run the streaming benchmark (row vs block layouts, \
     per-query rows/sec + prune rate + wall clock, the threaded \
     multi-pass dataflows, the worker/shard scaling sweeps with \
     combine walls, the cost-based planner sweep: chosen arm + \
     predicted vs measured wall per shape, the concurrent-serving sweep: queries/sec + \
     cache hit rate at N ∈ {1, 8, 32, 128}, and the projection-pushdown \
     sweep: rows/sec + bytes materialized, full vs pruned fetch on \
     narrow and wide tables) and write \
     BENCH_streaming.json (or the given path); the snapshot's schema \
     and how to read the speedups are documented in docs/BENCHMARKS.md";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    if args.iter().any(|a| a == "--json") {
        // `--json [path]` is a standalone mode: refuse mixtures like
        // `fig5 --json` instead of silently dropping the experiment ids.
        if args[0] != "--json" || args.len() > 2 {
            eprintln!("--json takes only an optional output path\n{USAGE}");
            std::process::exit(2);
        }
        let path = args
            .get(1)
            .map(String::as_str)
            .unwrap_or("BENCH_streaming.json");
        match cheetah_bench::streaming::write_bench_json(path) {
            Ok(json) => {
                print!("{json}");
                eprintln!("wrote {path}");
            }
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if args.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    for arg in &args {
        match arg.as_str() {
            "all" => exp::run_all(),
            "table2" => exp::table_2(),
            "table3" => exp::table_3(),
            "fig5" => exp::fig_5(),
            "fig6a" => exp::fig_6a(),
            "fig6b" => exp::fig_6b(),
            "fig7" => exp::fig_7(),
            "fig8" => exp::fig_8(),
            "fig9" => exp::fig_9(),
            "fig10a" => exp::fig_10a(),
            "fig10b" => exp::fig_10b(),
            "fig10c" => exp::fig_10c(),
            "fig10d" => exp::fig_10d(),
            "fig10e" => exp::fig_10e(),
            "fig10f" => exp::fig_10f(),
            "fig11a" => exp::fig_11a(),
            "fig11b" => exp::fig_11b(),
            "fig11c" => exp::fig_11c(),
            "fig11d" => exp::fig_11d(),
            "fig11e" => exp::fig_11e(),
            "fig11f" => exp::fig_11f(),
            "fig12" | "fig13" => exp::fig_12_13(),
            "ext" | "extensions" => exp::extensions(),
            other => {
                eprintln!("unknown experiment id '{other}'");
                std::process::exit(2);
            }
        }
    }
}
