//! One function per table/figure of the paper's evaluation. Each prints
//! the same rows/series the paper plots; EXPERIMENTS.md records the
//! paper-vs-measured comparison. Run through `cargo run --release -p
//! cheetah-bench --bin experiments -- <id>|all`.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use cheetah_core::decision::PruneStats;
use cheetah_core::distinct::{CacheMatrix, EvictionPolicy};
use cheetah_core::filter::{Atom, CmpOp, Formula};
use cheetah_core::groupby::{Extremum, GroupByPruner};
use cheetah_core::having::HavingPruner;
use cheetah_core::join::{BloomFilter, JoinPruner, KeyFilter, RegisterBloomFilter, Side};
use cheetah_core::opt::{OptDistinct, OptGroupByMax, OptJoin, OptSkyline, OptTopN};
use cheetah_core::resources::{table2, SwitchModel};
use cheetah_core::skyline::{Heuristic, SkylinePruner};
use cheetah_core::topn::{DeterministicTopN, RandomizedTopN};

use cheetah_engine::cheetah::{CheetahExecutor, PrunerConfig};
use cheetah_engine::cost::{master_rate, FALLBACK_MASTER_RATE, HARDWARE_COMPARISON};
use cheetah_engine::executor::run_all as run_executors;
use cheetah_engine::netaccel::NetAccelModel;
use cheetah_engine::q3;
use cheetah_engine::spark::SparkExecutor;
use cheetah_engine::{Agg, CostModel, ExecutionReport, Executor, Predicate, Query};

use cheetah_workloads::bigdata::{UserVisits, UserVisitsConfig};
use cheetah_workloads::dist::{rng_for, Zipf};
use cheetah_workloads::tpch::TpchData;

use rand::Rng;

use crate::{bigdata_db, fmt_frac, header};

/// Default stream length for the pruning-rate simulations (Figures 10/11).
pub const SIM_ENTRIES: usize = 1_000_000;

/// Run one query through Spark + Cheetah behind the [`Executor`] trait,
/// assert result equivalence, and hand back `(spark, cheetah)` — the one
/// driver loop every completion-time figure shares.
fn spark_vs_cheetah(
    spark: &SparkExecutor,
    cheetah: &CheetahExecutor,
    db: &cheetah_engine::Database,
    q: &Query,
) -> (ExecutionReport, ExecutionReport) {
    let executors: [&dyn Executor; 2] = [spark, cheetah];
    let mut reports = run_executors(&executors, db, q);
    let c = reports.pop().expect("cheetah report");
    let s = reports.pop().expect("spark report");
    assert_eq!(s.result, c.result, "{} diverged", q.kind());
    (s, c)
}

// ---------------------------------------------------------------- tables

/// Table 2: switch resources per algorithm at its default parameters.
pub fn table_2() {
    header(
        "Table 2",
        "switch resource consumption per algorithm",
        "§7, Table 2",
    );
    let a = SwitchModel::tofino_like().alus_per_stage;
    let rows = [
        (
            "DISTINCT FIFO (w=2, d=4096)",
            table2::distinct_fifo(2, 4096, a),
        ),
        ("DISTINCT LRU  (w=2, d=4096)", table2::distinct_lru(2, 4096)),
        ("SKYLINE SUM  (D=2, w=10)", table2::skyline_sum(2, 10)),
        ("SKYLINE APH  (D=2, w=10)", table2::skyline_aph(2, 10)),
        ("TOP N Det    (N=250, w=4)", table2::topn_det(4)),
        ("TOP N Rand   (w=4, d=4096)", table2::topn_rand(4, 4096)),
        ("GROUP BY     (w=8, d=4096)", table2::group_by(8, 4096)),
        (
            "JOIN BF      (M=4MB, H=3)",
            table2::join_bf(4 * (8 << 20), 3),
        ),
        (
            "JOIN RBF     (M=4MB, H=3)",
            table2::join_rbf(4 * (8 << 20), 3),
        ),
        ("HAVING       (w=1024, d=3)", table2::having(1024, 3, a)),
        ("Filtering    (1 predicate)", table2::filter(1)),
    ];
    println!(
        "{:<30} {:>7} {:>6} {:>12} {:>8}",
        "algorithm", "stages", "ALUs", "SRAM", "TCAM"
    );
    for (name, u) in rows {
        let sram = if u.sram_bits >= 8 * 1024 * 1024 {
            format!("{:.1} MB", u.sram_bits as f64 / 8.0 / 1024.0 / 1024.0)
        } else {
            format!("{:.1} KB", u.sram_kb())
        };
        println!(
            "{:<30} {:>7} {:>6} {:>12} {:>8}",
            name, u.stages, u.alus, sram, u.tcam_entries
        );
    }
}

/// Table 3: hardware choices (throughput/latency envelopes).
pub fn table_3() {
    header(
        "Table 3",
        "hardware performance comparison",
        "§2/§10, Table 3",
    );
    println!(
        "{:<12} {:>22} {:>18}",
        "system", "throughput (Gbps)", "latency (µs)"
    );
    for hw in HARDWARE_COMPARISON {
        let tp = if hw.throughput_gbps.0 == hw.throughput_gbps.1 {
            format!("{:.0}", hw.throughput_gbps.0)
        } else {
            format!("{:.0}–{:.0}", hw.throughput_gbps.0, hw.throughput_gbps.1)
        };
        let lat = if hw.latency_us.0 == 0.0 {
            format!("<{:.0}", hw.latency_us.1)
        } else if hw.latency_us.0 == hw.latency_us.1 {
            format!("{:.0}", hw.latency_us.0)
        } else {
            format!("{:.0}–{:.0}", hw.latency_us.0, hw.latency_us.1)
        };
        println!("{:<12} {:>22} {:>18}", hw.name, tp, lat);
    }
}

// ---------------------------------------------------------------- fig 5

/// Figure 5: completion times, Cheetah vs Spark (1st run / warm), for the
/// benchmark queries and each supported operation.
pub fn fig_5() {
    header(
        "Figure 5",
        "completion time: Cheetah vs Spark across the benchmark",
        "§8.2.1, Figure 5 (31.7M uservisits / 18M rankings; scaled ×1/100 \
         with the timing model extrapolating back)",
    );
    // 1/100 of the paper's sample; model_scale restores paper-scale time.
    let db = bigdata_db(317_000, 180_000, 2_000, 0.10, 5);
    let model = CostModel {
        model_scale: 100.0,
        ..CostModel::default()
    };
    let spark = SparkExecutor::new(model);
    let cheetah = CheetahExecutor::new(model, PrunerConfig::default());

    let a = Query::FilterCount {
        table: "rankings".into(),
        predicate: Predicate {
            columns: vec!["avgDuration".into()],
            atoms: vec![Atom::cmp(0, CmpOp::Lt, 10)],
            formula: Formula::Atom(0),
        },
    };
    let b = Query::GroupBy {
        table: "uservisits".into(),
        key: "sourcePrefix".into(),
        val: "adRevenue".into(),
        agg: Agg::Sum,
    };
    let singles: Vec<(&str, Query)> = vec![
        (
            "Distinct",
            Query::Distinct {
                table: "uservisits".into(),
                column: "userAgent".into(),
            },
        ),
        (
            "GroupBy (Max)",
            Query::GroupBy {
                table: "uservisits".into(),
                key: "userAgent".into(),
                val: "adRevenue".into(),
                agg: Agg::Max,
            },
        ),
        (
            "Skyline",
            Query::Skyline {
                table: "rankings".into(),
                columns: vec!["pageRankShuffled".into(), "avgDuration".into()],
            },
        ),
        (
            "Top-N",
            Query::TopN {
                table: "uservisits".into(),
                order_by: "adRevenue".into(),
                n: 250,
            },
        ),
        (
            "Join",
            Query::Join {
                left: "uservisits".into(),
                right: "rankings".into(),
                left_col: "destURL".into(),
                right_col: "pageURL".into(),
            },
        ),
    ];

    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>14}",
        "query", "spark 1st", "spark warm", "cheetah", "vs 1st run"
    );
    let print_row = |name: &str, s1: f64, s2: f64, c: f64| {
        println!(
            "{:<16} {:>10.2} s {:>10.2} s {:>10.2} s {:>12.0}% less",
            name,
            s1,
            s2,
            c,
            (1.0 - c / s1) * 100.0
        );
    };

    let (ra_s, ra_c) = spark_vs_cheetah(&spark, &cheetah, &db, &a);
    print_row(
        "BigData A",
        ra_s.first_run_total_s(),
        ra_s.timing.total_s(),
        ra_c.timing.total_s(),
    );
    let (rb_s, rb_c) = spark_vs_cheetah(&spark, &cheetah, &db, &b);
    print_row(
        "BigData B",
        rb_s.first_run_total_s(),
        rb_s.timing.total_s(),
        rb_c.timing.total_s(),
    );
    // A+B executed on one pipelined pass: shared setup, overlapped
    // serialization (§8.2.1: "faster than the sum of individual times").
    let ab_spark_1 = ra_s.first_run_total_s() + rb_s.first_run_total_s() - model.spark_overhead_s;
    let ab_spark_2 = ra_s.timing.total_s() + rb_s.timing.total_s() - model.spark_overhead_s;
    let ab_cheetah = ra_c.timing.total_s() + rb_c.timing.total_s()
        - model.cheetah_setup_s
        - 0.2 * ra_c.timing.network_s.min(rb_c.timing.network_s);
    print_row("BigData A+B", ab_spark_1, ab_spark_2, ab_cheetah);

    // TPC-H Q3 at the paper's default scale, one worker (§8.2).
    let tpch = TpchData::generate(0.02, 9);
    let q3_model = CostModel {
        workers: 1,
        model_scale: 50.0,
        ..CostModel::default()
    };
    let q3_s1 = q3::spark(&tpch, &q3_model, true);
    let q3_s2 = q3::spark(&tpch, &q3_model, false);
    let q3_c = q3::cheetah(&tpch, &q3_model, 4 * (8 << 20), 3, 3);
    assert_eq!(q3_s1.result, q3_c.result);
    print_row(
        "TPC-H Q3",
        q3_s1.timing.total_s(),
        q3_s2.timing.total_s(),
        q3_c.timing.total_s(),
    );

    for (name, q) in singles {
        let (s, c) = spark_vs_cheetah(&spark, &cheetah, &db, &q);
        print_row(
            name,
            s.first_run_total_s(),
            s.timing.total_s(),
            c.timing.total_s(),
        );
    }
}

// ---------------------------------------------------------------- fig 6

/// Figure 6a: completion vs number of workers (fixed total entries).
pub fn fig_6a() {
    header(
        "Figure 6a",
        "DISTINCT completion time vs number of workers",
        "§8.2.2, Figure 6a (total entries fixed, partitions vary)",
    );
    let db = bigdata_db(300_000, 50_000, 2_000, 0.5, 6);
    let q = Query::Distinct {
        table: "uservisits".into(),
        column: "userAgent".into(),
    };
    println!("{:<9} {:>12} {:>12}", "workers", "cheetah", "spark (warm)");
    for workers in 1..=5 {
        let model = CostModel {
            workers,
            model_scale: 100.0,
            ..CostModel::default()
        };
        let spark = SparkExecutor::new(model);
        let cheetah = CheetahExecutor::new(model, PrunerConfig::default());
        let (s, c) = spark_vs_cheetah(&spark, &cheetah, &db, &q);
        println!(
            "{:<9} {:>10.2} s {:>10.2} s",
            workers,
            c.timing.total_s(),
            s.timing.total_s()
        );
    }
}

/// Figure 6b: completion vs total entries (10M / 20M / 30M in the paper).
pub fn fig_6b() {
    header(
        "Figure 6b",
        "DISTINCT completion time vs number of entries",
        "§8.2.2, Figure 6b (scaled ×1/100)",
    );
    println!("{:<12} {:>12} {:>12}", "entries", "cheetah", "spark (warm)");
    for entries in [100_000usize, 200_000, 300_000] {
        let db = bigdata_db(entries, 50_000, 2_000, 0.5, 7);
        let model = CostModel {
            model_scale: 100.0,
            ..CostModel::default()
        };
        let q = Query::Distinct {
            table: "uservisits".into(),
            column: "userAgent".into(),
        };
        let spark = SparkExecutor::new(model);
        let cheetah = CheetahExecutor::new(model, PrunerConfig::default());
        let (s, c) = spark_vs_cheetah(&spark, &cheetah, &db, &q);
        println!(
            "{:<12} {:>10.2} s {:>10.2} s",
            entries * 100,
            c.timing.total_s(),
            s.timing.total_s()
        );
    }
}

// ---------------------------------------------------------------- fig 7

/// Figure 7: NetAccel's result-drain overhead vs result size (TPC-H Q3
/// order-key join), against Cheetah's streaming delivery.
pub fn fig_7() {
    header(
        "Figure 7",
        "overhead of moving results out of the switch dataplane",
        "§8.2.4, Figure 7 (NetAccel lower bound: ideal pruning, drain only)",
    );
    let input_entries = 200_000u64;
    let na = NetAccelModel::default();
    let model = CostModel::default();
    println!(
        "{:<22} {:>14} {:>16}",
        "result size (% input)", "cheetah", "NetAccel (bound)"
    );
    for pct in [1u64, 5, 10, 15, 20, 25, 30, 35, 40] {
        let entries = input_entries * pct / 100;
        // Cheetah: results stream to the master inline (already there);
        // the only cost is receiving + touching them once.
        let cheetah_s = entries as f64 / master_rate("join").unwrap_or(FALLBACK_MASTER_RATE)
            + model.transfer_s(entries as f64 * 64.0);
        let netaccel_s = na.drain_s(entries);
        println!(
            "{:<22} {:>12.3} s {:>14.3} s",
            format!("{pct}%"),
            cheetah_s,
            netaccel_s
        );
    }
}

// ---------------------------------------------------------------- fig 8

/// Figure 8: completion breakdown (computation / network / other) for
/// Spark, Cheetah@10G and Cheetah@20G on Distinct and Group-By.
pub fn fig_8() {
    header(
        "Figure 8",
        "delay breakdown at different network rates",
        "§8.2.3, Figure 8 (Spark's bottleneck is not the network)",
    );
    let db = bigdata_db(317_000, 50_000, 2_000, 0.5, 8);
    let queries: Vec<(&str, Query)> = vec![
        (
            "Distinct",
            Query::Distinct {
                table: "uservisits".into(),
                column: "userAgent".into(),
            },
        ),
        (
            "Group-By",
            Query::GroupBy {
                table: "uservisits".into(),
                key: "userAgent".into(),
                val: "adRevenue".into(),
                agg: Agg::Max,
            },
        ),
    ];
    println!(
        "{:<10} {:<14} {:>12} {:>10} {:>8} {:>9}",
        "query", "system", "computation", "network", "other", "total"
    );
    for (name, q) in &queries {
        let base = CostModel {
            model_scale: 100.0,
            ..CostModel::default()
        };
        let s = Executor::execute(&SparkExecutor::new(base), &db, q);
        println!(
            "{:<10} {:<14} {:>10.2} s {:>8.2} s {:>6.2} s {:>7.2} s",
            name,
            "Spark (warm)",
            s.timing.computation_s,
            s.timing.network_s,
            s.timing.other_s,
            s.timing.total_s()
        );
        for gbps in [10.0, 20.0] {
            let model = CostModel {
                nic_gbps: gbps,
                model_scale: 100.0,
                ..CostModel::default()
            };
            let c = Executor::execute(
                &CheetahExecutor::new(model, PrunerConfig::default()),
                &db,
                q,
            );
            assert_eq!(c.result, s.result);
            println!(
                "{:<10} {:<14} {:>10.2} s {:>8.2} s {:>6.2} s {:>7.2} s",
                name,
                format!("Cheetah {}G", gbps as u32),
                c.timing.computation_s,
                c.timing.network_s,
                c.timing.other_s,
                c.timing.total_s()
            );
        }
    }
}

// ---------------------------------------------------------------- fig 9

/// Figure 9: master completion latency vs unpruned fraction.
///
/// Two views: (a) *measured* — real master operators (hash set, heap,
/// max-map) over the unpruned entries on this machine; (b) *modeled
/// blocking* — the §8.3 queueing effect at the paper's arrival/service
/// rates, where entries buffer up once the master is the bottleneck.
pub fn fig_9() {
    header(
        "Figure 9",
        "blocking master latency for a given pruning rate",
        "§8.3, Figure 9 (latency grows super-linearly in the unpruned rate)",
    );
    let m_total = 2_000_000usize;
    let mut rng = rng_for(9, "fig9");
    let keys: Vec<u64> = (0..m_total).map(|_| rng.gen_range(0..100_000)).collect();
    let vals: Vec<u64> = (0..m_total).map(|_| rng.gen()).collect();

    // Paper-scale parameters for the blocking model.
    let model_entries = 31_700_000f64;
    let arrival_pps = 10.0e6;
    let service = |kind: &str| master_rate(kind).unwrap_or(FALLBACK_MASTER_RATE) / 4.0; // conservative master
    println!(
        "{:<10} | {:>14} {:>14} {:>14} | {:>11} {:>11} {:>11}",
        "unpruned",
        "topn meas.",
        "distinct meas.",
        "groupby meas.",
        "topn mdl",
        "dist mdl",
        "gby mdl"
    );
    for pct in [5u64, 10, 20, 30, 40, 50] {
        let n = m_total * pct as usize / 100;
        // Measured: real data structures on this machine.
        let t0 = Instant::now();
        let mut heap = std::collections::BinaryHeap::with_capacity(251);
        for &v in &vals[..n] {
            heap.push(std::cmp::Reverse(v));
            if heap.len() > 250 {
                heap.pop();
            }
        }
        let topn_meas = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let mut set = HashSet::with_capacity(1024);
        for &k in &keys[..n] {
            set.insert(k);
        }
        let distinct_meas = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let mut map: HashMap<u64, u64> = HashMap::with_capacity(1024);
        for i in 0..n {
            let e = map.entry(keys[i]).or_insert(0);
            *e = (*e).max(vals[i]);
        }
        let groupby_meas = t0.elapsed().as_secs_f64();

        // Modeled blocking at paper scale: the stream takes
        // model_entries/arrival seconds; the master needs
        // unpruned/service seconds; the excess is the blocking latency.
        let stream_s = model_entries / arrival_pps;
        let blocking = |kind: &str| {
            let unpruned = model_entries * pct as f64 / 100.0;
            (unpruned / service(kind) - stream_s).max(0.0) + unpruned / service(kind) * 0.1
        };
        println!(
            "{:<10} | {:>12.3} s {:>12.3} s {:>12.3} s | {:>9.2} s {:>9.2} s {:>9.2} s",
            format!("{pct}%"),
            topn_meas,
            distinct_meas,
            groupby_meas,
            blocking("topn"),
            blocking("distinct"),
            blocking("groupby")
        );
    }
}

// ---------------------------------------------------------------- fig 10

/// Figure 10a: DISTINCT unpruned fraction vs matrix rows `d` (w = 2),
/// LRU vs FIFO vs OPT.
pub fn fig_10a() {
    header(
        "Figure 10a",
        "DISTINCT pruning vs resources (w = 2)",
        "§8.3, Figure 10a (4096×2 prunes ~all duplicates)",
    );
    let uv = UserVisits::generate(UserVisitsConfig {
        rows: SIM_ENTRIES,
        ua_distinct: 1_000,
        url_distinct: 10_000,
        seed: 10,
    });
    let stream = &uv.user_agent;
    let mut opt = OptDistinct::new();
    let mut opt_stats = PruneStats::default();
    for &v in stream {
        opt_stats.record(opt.process(v));
    }
    println!("{:<8} {:>14} {:>14} {:>14}", "d", "LRU", "FIFO", "OPT");
    for d in [64usize, 256, 1024, 4096, 16384] {
        let run = |policy| {
            let mut m = CacheMatrix::new(d, 2, policy, 3);
            let mut stats = PruneStats::default();
            for &v in stream {
                stats.record(m.process(v));
            }
            stats.unpruned_fraction()
        };
        println!(
            "{:<8} {:>14} {:>14} {:>14}",
            d,
            fmt_frac(run(EvictionPolicy::Lru)),
            fmt_frac(run(EvictionPolicy::Fifo)),
            fmt_frac(opt_stats.unpruned_fraction())
        );
    }
}

/// Figure 10b: SKYLINE unpruned fraction vs stored points `w`:
/// APH / Sum / Baseline / OPT on 2-D data.
pub fn fig_10b() {
    header(
        "Figure 10b",
        "SKYLINE pruning vs stored points",
        "§8.3, Figure 10b (APH ≥ Sum ≫ Baseline; APH perfect by w = 20)",
    );
    let n = SIM_ENTRIES / 2;
    let mut rng = rng_for(11, "fig10b");
    let points: Vec<[u64; 2]> = (0..n)
        .map(|_| [rng.gen_range(1..1u64 << 16), rng.gen_range(1..1u64 << 16)])
        .collect();
    let mut opt = OptSkyline::new();
    let mut opt_stats = PruneStats::default();
    for p in &points {
        opt_stats.record(opt.process(p));
    }
    println!(
        "{:<6} {:>14} {:>14} {:>14} {:>14}",
        "w", "APH", "Sum", "Baseline", "OPT"
    );
    for w in [1usize, 2, 4, 7, 10, 15, 20] {
        let run = |h: Heuristic| {
            let mut p = SkylinePruner::new(2, w, h);
            let mut stats = PruneStats::default();
            for pt in &points {
                stats.record(p.process(pt));
            }
            stats.unpruned_fraction()
        };
        println!(
            "{:<6} {:>14} {:>14} {:>14} {:>14}",
            w,
            fmt_frac(run(Heuristic::aph_default())),
            fmt_frac(run(Heuristic::Sum)),
            fmt_frac(run(Heuristic::Baseline)),
            fmt_frac(opt_stats.unpruned_fraction())
        );
    }
}

/// Figure 10c: TOP N unpruned fraction vs matrix width `w` (d = 4096):
/// deterministic vs randomized vs OPT.
pub fn fig_10c() {
    header(
        "Figure 10c",
        "TOP N pruning vs matrix width (d = 4096, N = 250)",
        "§8.3, Figure 10c (randomized ≈ 5× optimal; deterministic far weaker)",
    );
    let uv = UserVisits::generate(UserVisitsConfig {
        rows: SIM_ENTRIES,
        ua_distinct: 100,
        url_distinct: 100,
        seed: 12,
    });
    let stream = &uv.ad_revenue; // long-tailed ORDER BY column
    let n = 250;
    let mut opt = OptTopN::new(n);
    let mut opt_stats = PruneStats::default();
    for &v in stream {
        opt_stats.record(opt.process(v));
    }
    println!("{:<6} {:>14} {:>14} {:>14}", "w", "Det", "Rand", "OPT");
    for w in [2usize, 4, 6, 8, 12] {
        let mut det = DeterministicTopN::new(n as u64, w);
        let mut det_stats = PruneStats::default();
        for &v in stream {
            det_stats.record(det.process(v));
        }
        let mut rnd = RandomizedTopN::new(4096, w, 13);
        let mut rnd_stats = PruneStats::default();
        for &v in stream {
            rnd_stats.record(rnd.process(v));
        }
        println!(
            "{:<6} {:>14} {:>14} {:>14}",
            w,
            fmt_frac(det_stats.unpruned_fraction()),
            fmt_frac(rnd_stats.unpruned_fraction()),
            fmt_frac(opt_stats.unpruned_fraction())
        );
    }
}

/// Figure 10d: GROUP BY (MAX) unpruned fraction vs matrix width `w`.
pub fn fig_10d() {
    header(
        "Figure 10d",
        "GROUP BY pruning vs matrix width",
        "§8.3, Figure 10d (99% pruning with 3 stages, all with 9)",
    );
    let uv = UserVisits::generate(UserVisitsConfig {
        rows: SIM_ENTRIES,
        ua_distinct: 1_000,
        url_distinct: 100,
        seed: 14,
    });
    let mut opt = OptGroupByMax::new();
    let mut opt_stats = PruneStats::default();
    for (k, v) in uv.user_agent.iter().zip(&uv.ad_revenue) {
        opt_stats.record(opt.process(*k, *v));
    }
    println!("{:<6} {:>14} {:>14}", "w", "GroupBy", "OPT");
    for w in 1usize..=9 {
        let mut p = GroupByPruner::new(512, w, Extremum::Max, 15);
        let mut stats = PruneStats::default();
        for (k, v) in uv.user_agent.iter().zip(&uv.ad_revenue) {
            stats.record(p.process(*k, *v));
        }
        println!(
            "{:<6} {:>14} {:>14}",
            w,
            fmt_frac(stats.unpruned_fraction()),
            fmt_frac(opt_stats.unpruned_fraction())
        );
    }
}

/// Figure 10e: JOIN unpruned fraction vs Bloom filter size: BF / RBF / OPT.
pub fn fig_10e() {
    header(
        "Figure 10e",
        "JOIN pruning vs Bloom filter size",
        "§8.3, Figure 10e (≥1MB for a good rate; BF ≈ RBF; near-OPT at 16MB)",
    );
    let n = SIM_ENTRIES / 2;
    let mut rng = rng_for(16, "fig10e");
    // ~10% key overlap (footnote 10).
    let a_keys: Vec<u64> = (0..n).map(|_| rng.gen_range(1..=10_000_000u64)).collect();
    let b_keys: Vec<u64> = (0..n)
        .map(|_| rng.gen_range(9_000_000..=19_000_000u64))
        .collect();
    let opt = OptJoin::from_keys(b_keys.iter().copied());
    let mut opt_stats = PruneStats::default();
    for &k in &a_keys {
        opt_stats.record(opt.process(k));
    }
    println!(
        "{:<12} {:>14} {:>14} {:>14}",
        "filter size", "BF", "RBF", "OPT"
    );
    for kb in [64u64, 256, 1024, 4096, 16384] {
        let m_bits = kb * 1024 * 8;
        let mut bf = JoinPruner::new(
            BloomFilter::new(m_bits, 3, 1),
            BloomFilter::new(m_bits, 3, 2),
        );
        for &k in &a_keys {
            bf.observe(Side::Left, k);
        }
        for &k in &b_keys {
            bf.observe(Side::Right, k);
        }
        let mut bf_stats = PruneStats::default();
        for &k in &a_keys {
            bf_stats.record(bf.prune_decision(Side::Left, k));
        }
        let mut rbf_b = RegisterBloomFilter::new(m_bits, 3, 4);
        for &k in &b_keys {
            rbf_b.insert(k);
        }
        let mut rbf_stats = PruneStats::default();
        for &k in &a_keys {
            rbf_stats.record(if rbf_b.contains(k) {
                cheetah_core::Decision::Forward
            } else {
                cheetah_core::Decision::Prune
            });
        }
        println!(
            "{:<12} {:>14} {:>14} {:>14}",
            format!("{} KB", kb),
            fmt_frac(bf_stats.unpruned_fraction()),
            fmt_frac(rbf_stats.unpruned_fraction()),
            fmt_frac(opt_stats.unpruned_fraction())
        );
    }
}

/// The HAVING simulation workload: mildly skewed keys over a large
/// domain, with the threshold at 2% of the total mass — so the true
/// output is (nearly) empty and everything the switch forwards is a
/// Count-Min false positive. The sketch's ℓ1 error is `mass/w` per row:
/// counters sweep from error ≫ threshold (no pruning possible) down to
/// error ≪ threshold (perfect pruning) — Figure 10f's curve.
fn having_workload(rows: usize, keys: usize, seed: u64) -> (Vec<(u64, u64)>, u64) {
    let mut rng = rng_for(seed, "having-workload");
    let zipf = Zipf::new(keys, 0.6);
    let entries: Vec<(u64, u64)> = (0..rows)
        .map(|_| (zipf.sample(&mut rng) as u64 + 1, rng.gen_range(1..2_000u64)))
        .collect();
    let total: u64 = entries.iter().map(|&(_, v)| v).sum();
    let threshold = total / 50;
    (entries, threshold)
}

/// Figure 10f: HAVING unpruned fraction vs counters per Count-Min row
/// (3 rows).
pub fn fig_10f() {
    header(
        "Figure 10f",
        "HAVING pruning vs counters per row (3 Count-Min rows)",
        "§8.3, Figure 10f (near-perfect pruning at 1024 counters/row)",
    );
    let (entries, threshold) = having_workload(SIM_ENTRIES, 5_000, 17);
    let opt_unpruned = cheetah_core::opt::opt_having_unpruned(&entries, threshold);
    let opt_frac = opt_unpruned as f64 / entries.len() as f64;
    println!("{:<10} {:>14} {:>14}", "counters", "Having", "OPT");
    for w in [32usize, 64, 128, 256, 512, 1024] {
        let mut p = HavingPruner::new(3, w, threshold, 18);
        let mut stats = PruneStats::default();
        for &(k, v) in &entries {
            p.pass_one(k, v);
        }
        for &(k, _) in &entries {
            stats.record(p.pass_two(k));
        }
        println!(
            "{:<10} {:>14} {:>14}",
            w,
            fmt_frac(stats.unpruned_fraction()),
            fmt_frac(opt_frac)
        );
    }
}

// ---------------------------------------------------------------- fig 11

/// Cumulative unpruned fractions at checkpoints along a stream.
fn cumulative<F: FnMut(usize) -> cheetah_core::Decision>(
    total: usize,
    checkpoints: &[usize],
    mut process: F,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(checkpoints.len());
    let mut forwarded = 0u64;
    let mut ci = 0;
    for i in 0..total {
        if process(i).is_forward() {
            forwarded += 1;
        }
        if ci < checkpoints.len() && i + 1 == checkpoints[ci] {
            out.push(forwarded as f64 / (i + 1) as f64);
            ci += 1;
        }
    }
    out
}

fn checkpoints(total: usize) -> Vec<usize> {
    [0.2, 0.4, 0.6, 0.8, 1.0]
        .iter()
        .map(|f| ((total as f64) * f) as usize)
        .collect()
}

fn print_scale_table(title: &str, cps: &[usize], series: &[(String, Vec<f64>)]) {
    print!("{:<12}", title);
    for cp in cps {
        print!(" {:>12}", format!("@{}k", cp / 1000));
    }
    println!();
    for (name, vals) in series {
        print!("{name:<12}");
        for v in vals {
            print!(" {:>12}", fmt_frac(*v));
        }
        println!();
    }
}

/// Figure 11a: DISTINCT pruning vs data scale for several `d`.
pub fn fig_11a() {
    header(
        "Figure 11a",
        "DISTINCT pruning vs data scale (w = 2)",
        "§8.3, Figure 11a (improves with scale: first occurrences amortize)",
    );
    let uv = UserVisits::generate(UserVisitsConfig {
        rows: SIM_ENTRIES,
        ua_distinct: 2_000,
        url_distinct: 100,
        seed: 21,
    });
    let cps = checkpoints(uv.len());
    let mut series = Vec::new();
    for d in [64usize, 256, 1024, 4096, 16384] {
        let mut m = CacheMatrix::new(d, 2, EvictionPolicy::Lru, 3);
        let vals = cumulative(uv.len(), &cps, |i| m.process(uv.user_agent[i]));
        series.push((format!("d={d}"), vals));
    }
    let mut opt = OptDistinct::new();
    let vals = cumulative(uv.len(), &cps, |i| opt.process(uv.user_agent[i]));
    series.push(("OPT".to_string(), vals));
    print_scale_table("entries→", &cps, &series);
}

/// Figure 11b: SKYLINE (APH) pruning vs data scale for several `w`.
pub fn fig_11b() {
    header(
        "Figure 11b",
        "SKYLINE (APH) pruning vs data scale",
        "§8.3, Figure 11b (smaller output fraction at scale ⇒ better pruning)",
    );
    let n = SIM_ENTRIES / 2;
    let mut rng = rng_for(22, "fig11b");
    let pts: Vec<[u64; 2]> = (0..n)
        .map(|_| [rng.gen_range(1..1u64 << 16), rng.gen_range(1..1u64 << 16)])
        .collect();
    let cps = checkpoints(n);
    let mut series = Vec::new();
    for w in [2usize, 4, 8, 16] {
        let mut p = SkylinePruner::new(2, w, Heuristic::aph_default());
        let vals = cumulative(n, &cps, |i| p.process(&pts[i]));
        series.push((format!("w={w}"), vals));
    }
    let mut opt = OptSkyline::new();
    let vals = cumulative(n, &cps, |i| opt.process(&pts[i]));
    series.push(("OPT".to_string(), vals));
    print_scale_table("entries→", &cps, &series);
}

/// Figure 11c: TOP N pruning vs data scale for several `w` (d = 4096).
pub fn fig_11c() {
    header(
        "Figure 11c",
        "TOP N (randomized) pruning vs data scale",
        "§8.3, Figure 11c / Theorem 3's logarithmic dependence on m",
    );
    let uv = UserVisits::generate(UserVisitsConfig {
        rows: SIM_ENTRIES,
        ua_distinct: 100,
        url_distinct: 100,
        seed: 23,
    });
    let cps = checkpoints(uv.len());
    let mut series = Vec::new();
    for w in [4usize, 6, 8, 12] {
        let mut p = RandomizedTopN::new(4096, w, 24);
        let vals = cumulative(uv.len(), &cps, |i| p.process(uv.ad_revenue[i]));
        series.push((format!("w={w}"), vals));
    }
    let mut opt = OptTopN::new(250);
    let vals = cumulative(uv.len(), &cps, |i| opt.process(uv.ad_revenue[i]));
    series.push(("OPT".to_string(), vals));
    print_scale_table("entries→", &cps, &series);
}

/// Figure 11d: GROUP BY pruning vs data scale for several `w`.
pub fn fig_11d() {
    header(
        "Figure 11d",
        "GROUP BY pruning vs data scale",
        "§8.3, Figure 11d",
    );
    let uv = UserVisits::generate(UserVisitsConfig {
        rows: SIM_ENTRIES,
        ua_distinct: 1_000,
        url_distinct: 100,
        seed: 25,
    });
    let cps = checkpoints(uv.len());
    let mut series = Vec::new();
    for w in [2usize, 4, 6, 8, 10] {
        let mut p = GroupByPruner::new(512, w, Extremum::Max, 26);
        let vals = cumulative(uv.len(), &cps, |i| {
            p.process(uv.user_agent[i], uv.ad_revenue[i])
        });
        series.push((format!("w={w}"), vals));
    }
    let mut opt = OptGroupByMax::new();
    let vals = cumulative(uv.len(), &cps, |i| {
        opt.process(uv.user_agent[i], uv.ad_revenue[i])
    });
    series.push(("OPT".to_string(), vals));
    print_scale_table("entries→", &cps, &series);
}

/// Figure 11e: JOIN pruning vs data scale for several filter sizes.
pub fn fig_11e() {
    header(
        "Figure 11e",
        "JOIN pruning vs data scale",
        "§8.3, Figure 11e (false positives accumulate ⇒ degrades with scale)",
    );
    let n = SIM_ENTRIES / 2;
    let mut rng = rng_for(27, "fig11e");
    let a_keys: Vec<u64> = (0..n).map(|_| rng.gen_range(1..=10_000_000u64)).collect();
    let b_keys: Vec<u64> = (0..n)
        .map(|_| rng.gen_range(9_000_000..=19_000_000u64))
        .collect();
    let cps = checkpoints(n);
    let mut series = Vec::new();
    for mb in [0.25f64, 1.0, 4.0, 16.0] {
        let m_bits = (mb * 8.0 * 1024.0 * 1024.0) as u64;
        // Filters fill as the B-side streams; probe A-side prefix-aligned
        // (both sides grow together, as in the two-pass flow).
        let mut filter = BloomFilter::new(m_bits, 3, 28);
        let vals = cumulative(n, &cps, |i| {
            filter.insert(b_keys[i]);
            if filter.contains(a_keys[i]) {
                cheetah_core::Decision::Forward
            } else {
                cheetah_core::Decision::Prune
            }
        });
        series.push((format!("{mb}MB"), vals));
    }
    // OPT: exact membership of the B prefix.
    let mut seen = HashSet::new();
    let vals = cumulative(n, &cps, |i| {
        seen.insert(b_keys[i]);
        if seen.contains(&a_keys[i]) {
            cheetah_core::Decision::Forward
        } else {
            cheetah_core::Decision::Prune
        }
    });
    series.push(("OPT".to_string(), vals));
    print_scale_table("entries→", &cps, &series);
}

/// Figure 11f: HAVING pruning vs data scale for several counter widths.
pub fn fig_11f() {
    header(
        "Figure 11f",
        "HAVING pruning vs data scale (3 Count-Min rows)",
        "§8.3, Figure 11f (Count-Min false positives grow with the data)",
    );
    let (entries, threshold) = having_workload(SIM_ENTRIES, 5_000, 29);
    let cps = checkpoints(entries.len());
    let mut series = Vec::new();
    for w in [32usize, 64, 128, 256, 512] {
        // Stream the prefix through pass 1, then measure the pass-2
        // fraction at each checkpoint (re-running pass 2 per checkpoint).
        let mut p = HavingPruner::new(3, w, threshold, 30);
        let mut vals = Vec::new();
        let mut prev = 0usize;
        for &cp in &cps {
            for &(k, v) in &entries[prev..cp] {
                p.pass_one(k, v);
            }
            prev = cp;
            let fwd = entries[..cp]
                .iter()
                .filter(|&&(k, _)| p.pass_two(k).is_forward())
                .count();
            vals.push(fwd as f64 / cp as f64);
        }
        series.push((format!("w=2^{}", w.ilog2()), vals));
    }
    // OPT at each checkpoint (threshold fixed at the full-stream value, as
    // in the paper where c is part of the query).
    let vals = cps
        .iter()
        .map(|&cp| {
            cheetah_core::opt::opt_having_unpruned(&entries[..cp], threshold) as f64 / cp as f64
        })
        .collect();
    series.push(("OPT".to_string(), vals));
    print_scale_table("entries→", &cps, &series);
}

// ------------------------------------------------------------ fig 12/13

/// Figures 12 and 13: processing on a server vs the switch CPU
/// (NetAccel's overflow path), for Group-By and Distinct.
pub fn fig_12_13() {
    header(
        "Figures 12/13",
        "server vs switch-CPU processing time",
        "Appendix F (the switch CPU neither computes nor moves data fast)",
    );
    let na = NetAccelModel::default();
    println!("{:<14} {:>14} {:>16}", "entries", "server", "switch CPU");
    for entries in [1_000_000u64, 5_000_000, 10_000_000, 50_000_000, 100_000_000] {
        println!(
            "{:<14} {:>12.2} s {:>14.2} s",
            entries,
            na.server_s(entries),
            na.switch_cpu_s(entries)
        );
    }
    println!("(identical model for Figure 12 Group-By and Figure 13 Distinct: the");
    println!(" bottleneck is the dataplane→CPU channel and the wimpy core, not the op)");
}

// ------------------------------------------------------------ extensions

/// Beyond the paper's figures: quantify the §9 extensions (multi-entry
/// packets, switch trees) and the full-stack pisa backend.
pub fn extensions() {
    header(
        "Extensions",
        "§9 batching + switch trees; reference vs pisa backend",
        "§9 / footnotes (no corresponding paper figure)",
    );
    use cheetah_core::batch::{BatchedPruner, DistinctBatchAccess};
    use cheetah_core::distinct::DistinctPruner;
    use cheetah_core::multiswitch::SwitchTree;
    use cheetah_core::RowPruner;
    use cheetah_engine::backend::SwitchBackend;

    // Batching sweep: packets sent vs pruning lost.
    let mut rng = rng_for(90, "ext-batch");
    let stream: Vec<u64> = (0..SIM_ENTRIES / 2)
        .map(|_| rng.gen_range(1..2_000u64))
        .collect();
    println!("— §9 multi-entry packets (DISTINCT, 512×2) —");
    println!(
        "{:<18} {:>10} {:>12} {:>10}",
        "entries/packet", "packets", "unpruned", "skipped"
    );
    for per_packet in [1usize, 2, 4, 8] {
        let inner = DistinctBatchAccess::new(DistinctPruner::new(512, 2, EvictionPolicy::Lru, 3));
        let mut b = BatchedPruner::new(inner);
        for chunk in stream.chunks(per_packet) {
            let entries: Vec<Vec<u64>> = chunk.iter().map(|&k| vec![k]).collect();
            let refs: Vec<&[u64]> = entries.iter().map(|v| v.as_slice()).collect();
            b.process_packet(&refs);
        }
        println!(
            "{:<18} {:>10} {:>12} {:>10}",
            per_packet,
            b.stats.packets,
            fmt_frac(b.stats.unpruned_fraction()),
            b.stats.skipped
        );
    }

    // Switch tree vs a single switch.
    println!("\n— §9 switch tree vs one switch (DISTINCT, 64×2 each) —");
    let tree_stream: Vec<u64> = {
        let mut rng = rng_for(91, "ext-tree");
        (0..SIM_ENTRIES / 2)
            .map(|_| rng.gen_range(1..600u64))
            .collect()
    };
    let mut single = DistinctPruner::new(64, 2, EvictionPolicy::Lru, 2);
    let single_fwd = tree_stream
        .iter()
        .filter(|&&k| single.process(k).is_forward())
        .count();
    for leaves in [2usize, 4, 8] {
        let leaf = |s: u64| -> Box<dyn RowPruner + Send> {
            Box::new(DistinctPruner::new(64, 2, EvictionPolicy::Lru, s))
        };
        let mut tree = SwitchTree::new((0..leaves as u64).map(leaf).collect(), leaf(99), 7);
        let fwd = tree_stream
            .iter()
            .filter(|&&k| tree.process_row(&[k]).is_forward())
            .count();
        println!(
            "{} leaves + root: {:>8} forwarded   (single switch: {single_fwd})",
            leaves, fwd
        );
    }

    // Full-stack pisa backend on the benchmark DISTINCT.
    println!("\n— engine on the metered PISA backend —");
    let db = bigdata_db(100_000, 20_000, 1_000, 0.5, 92);
    let q = Query::Distinct {
        table: "uservisits".into(),
        column: "userAgent".into(),
    };
    for (name, backend) in [
        ("reference", SwitchBackend::Reference),
        ("pisa", SwitchBackend::Pisa),
    ] {
        let exec = CheetahExecutor::new(
            CostModel::default(),
            PrunerConfig {
                backend,
                ..PrunerConfig::default()
            },
        );
        let started = std::time::Instant::now();
        let r = Executor::execute(&exec, &db, &q);
        println!(
            "{:<10} backend: pruned {:.4}, result size {}, wall {:?}",
            name,
            r.prune_stats().pruned_fraction(),
            r.result.output_size(),
            started.elapsed()
        );
    }
}

/// Run every experiment in paper order.
pub fn run_all() {
    table_2();
    table_3();
    fig_5();
    fig_6a();
    fig_6b();
    fig_7();
    fig_8();
    fig_9();
    fig_10a();
    fig_10b();
    fig_10c();
    fig_10d();
    fig_10e();
    fig_10f();
    fig_11a();
    fig_11b();
    fig_11c();
    fig_11d();
    fig_11e();
    fig_11f();
    fig_12_13();
    extensions();
}
