//! Criterion micro-benchmarks: per-entry throughput of every pruning
//! algorithm — the quantity that must stay far above the per-port packet
//! rate for the software simulation to be usable at experiment scale
//! (the real switch does this at line rate by construction).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use cheetah_core::distinct::{CacheMatrix, EvictionPolicy};
use cheetah_core::filter::{Atom, CmpOp, FilterPruner, Formula};
use cheetah_core::groupby::{Extremum, GroupByPruner};
use cheetah_core::having::CountMinSketch;
use cheetah_core::join::{BloomFilter, KeyFilter};
use cheetah_core::skyline::{Heuristic, SkylinePruner};
use cheetah_core::topn::{DeterministicTopN, RandomizedTopN};
use cheetah_workloads::dist::rng_for;
use rand::Rng;

const N: usize = 100_000;

fn keys(seed: u64, domain: u64) -> Vec<u64> {
    let mut rng = rng_for(seed, "bench");
    (0..N).map(|_| rng.gen_range(1..=domain)).collect()
}

fn bench_pruners(c: &mut Criterion) {
    let stream = keys(1, 10_000);
    let vals = keys(2, 1_000_000);

    let mut g = c.benchmark_group("pruners");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(20);

    g.bench_function("distinct_lru_4096x2", |b| {
        let mut m = CacheMatrix::new(4096, 2, EvictionPolicy::Lru, 0);
        b.iter(|| {
            for &k in &stream {
                black_box(m.process(k));
            }
        })
    });

    g.bench_function("topn_rand_4096x4", |b| {
        let mut p = RandomizedTopN::new(4096, 4, 0);
        b.iter(|| {
            for &v in &vals {
                black_box(p.process(v));
            }
        })
    });

    g.bench_function("topn_det_w4", |b| {
        let mut p = DeterministicTopN::new(250, 4);
        b.iter(|| {
            for &v in &vals {
                black_box(p.process(v));
            }
        })
    });

    g.bench_function("groupby_max_4096x8", |b| {
        let mut p = GroupByPruner::new(4096, 8, Extremum::Max, 0);
        b.iter(|| {
            for (k, v) in stream.iter().zip(&vals) {
                black_box(p.process(*k, *v));
            }
        })
    });

    g.bench_function("count_min_3x1024_update", |b| {
        let mut cm = CountMinSketch::new(3, 1024, 0);
        b.iter(|| {
            for (k, v) in stream.iter().zip(&vals) {
                black_box(cm.update(*k, *v & 0xff));
            }
        })
    });

    g.bench_function("bloom_4mb_h3_insert_query", |b| {
        let mut bf = BloomFilter::new(4 * (8 << 20), 3, 0);
        b.iter(|| {
            for &k in &stream {
                bf.insert(k);
                black_box(bf.contains(k ^ 1));
            }
        })
    });

    g.bench_function("skyline_aph_2d_w10", |b| {
        let pts: Vec<[u64; 2]> = stream
            .iter()
            .zip(&vals)
            .map(|(&a, &b)| [a + 1, b + 1])
            .collect();
        let mut p = SkylinePruner::new(2, 10, Heuristic::aph_default());
        b.iter(|| {
            for pt in &pts {
                black_box(p.process(pt));
            }
        })
    });

    g.bench_function("filter_truth_table_3atoms", |b| {
        let atoms = vec![
            Atom::cmp(0, CmpOp::Gt, 5_000),
            Atom::cmp(1, CmpOp::Lt, 500_000),
            Atom::cmp(1, CmpOp::Ne, 7),
        ];
        let f = Formula::Or(vec![
            Formula::Atom(0),
            Formula::And(vec![Formula::Atom(1), Formula::Atom(2)]),
        ]);
        let p = FilterPruner::new(atoms, f).unwrap();
        b.iter(|| {
            for (k, v) in stream.iter().zip(&vals) {
                black_box(p.process(&[*k, *v]));
            }
        })
    });

    g.finish();
}

criterion_group!(benches, bench_pruners);
criterion_main!(benches);
