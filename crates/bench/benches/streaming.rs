//! Row-at-a-time vs block streaming: criterion comparison of the legacy
//! per-row-`Vec` interleave + `process_row` loop against the flat
//! [`cheetah_engine::stream::EntryStream`] + `process_block` hot path,
//! per pruning operator. The `--json` experiments mode records the same
//! comparison into `BENCH_streaming.json`; the acceptance bar is ≥2×
//! rows/sec on the filter, topn and groupby microbenches.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use cheetah_bench::streaming::{block_path, micro_columns, micro_pruner, micro_table, MICRO_OPS};

const ROWS: usize = 100_000;
const WORKERS: usize = 5;

fn bench_streaming(c: &mut Criterion) {
    let table = micro_table(ROWS, 1);
    for op in MICRO_OPS {
        let cols = micro_columns(op);
        let mut g = c.benchmark_group(format!("streaming_{op}"));
        g.throughput(Throughput::Elements(ROWS as u64));
        g.sample_size(10);
        g.bench_function("row_at_a_time", |b| {
            b.iter(|| {
                let mut p = micro_pruner(op);
                black_box(cheetah_bench::streaming::row_path(
                    &table,
                    &cols,
                    WORKERS,
                    p.as_mut(),
                ))
            })
        });
        g.bench_function("block_stream", |b| {
            b.iter(|| {
                let mut p = micro_pruner(op);
                black_box(block_path(&table, &cols, WORKERS, p.as_mut()))
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
