//! Ablation benches for the design choices DESIGN.md calls out: each
//! group compares the paper's chosen design against its alternatives on
//! identical streams, reporting both speed (criterion) and — via the
//! printed side-channel — the pruning quality the choice buys.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use cheetah_core::decision::PruneStats;
use cheetah_core::distinct::{CacheMatrix, EvictionPolicy};
use cheetah_core::fingerprint::Fingerprinter;
use cheetah_core::join::{BloomFilter, KeyFilter, RegisterBloomFilter};
use cheetah_core::params::topn_optimal_config;
use cheetah_core::skyline::{Heuristic, SkylinePruner};
use cheetah_core::topn::{DeterministicTopN, RandomizedTopN};
use cheetah_workloads::dist::{rng_for, Zipf};
use rand::Rng;

const N: usize = 100_000;

/// Ablation: LRU vs FIFO replacement in the DISTINCT matrix.
fn ablate_distinct_policy(c: &mut Criterion) {
    let zipf = Zipf::new(5_000, 1.0);
    let mut rng = rng_for(1, "ablate-distinct");
    let stream: Vec<u64> = (0..N).map(|_| zipf.sample(&mut rng) as u64 + 1).collect();
    let mut g = c.benchmark_group("ablate_distinct_policy");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(20);
    for (name, policy) in [("lru", EvictionPolicy::Lru), ("fifo", EvictionPolicy::Fifo)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut m = CacheMatrix::new(1024, 2, policy, 3);
                let mut stats = PruneStats::default();
                for &v in &stream {
                    stats.record(m.process(v));
                }
                black_box(stats.pruned)
            })
        });
    }
    g.finish();
}

/// Ablation: deterministic thresholds vs randomized matrix for TOP N.
fn ablate_topn(c: &mut Criterion) {
    let mut rng = rng_for(2, "ablate-topn");
    let stream: Vec<u64> = (0..N)
        .map(|_| {
            let exp = rng.gen_range(0..24u32);
            rng.gen_range(0..(1u64 << exp).max(2))
        })
        .collect();
    let mut g = c.benchmark_group("ablate_topn");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(20);
    g.bench_function("deterministic_w4", |b| {
        b.iter(|| {
            let mut p = DeterministicTopN::new(250, 4);
            let mut fwd = 0u64;
            for &v in &stream {
                fwd += u64::from(p.process(v).is_forward());
            }
            black_box(fwd)
        })
    });
    g.bench_function("randomized_4096x4", |b| {
        b.iter(|| {
            let mut p = RandomizedTopN::new(4096, 4, 0);
            let mut fwd = 0u64;
            for &v in &stream {
                fwd += u64::from(p.process(v).is_forward());
            }
            black_box(fwd)
        })
    });
    g.finish();
}

/// Ablation: skyline projection heuristics.
fn ablate_skyline(c: &mut Criterion) {
    let mut rng = rng_for(3, "ablate-skyline");
    // Mismatched ranges — the case Appendix D designs APH for.
    let pts: Vec<[u64; 2]> = (0..N / 2)
        .map(|_| [rng.gen_range(1..256u64), rng.gen_range(1..65_536u64)])
        .collect();
    let mut g = c.benchmark_group("ablate_skyline");
    g.throughput(Throughput::Elements((N / 2) as u64));
    g.sample_size(15);
    for (name, h) in [
        ("sum", Heuristic::Sum),
        ("product_exact", Heuristic::Product),
        ("aph", Heuristic::aph_default()),
        ("baseline_first_w", Heuristic::Baseline),
    ] {
        let pts = &pts;
        g.bench_function(name, move |b| {
            b.iter(|| {
                let mut p = SkylinePruner::new(2, 10, h.clone());
                let mut fwd = 0u64;
                for pt in pts {
                    fwd += u64::from(p.process(pt).is_forward());
                }
                black_box(fwd)
            })
        });
    }
    g.finish();
}

/// Ablation: classic Bloom filter vs the single-stage Register variant.
fn ablate_join(c: &mut Criterion) {
    let mut rng = rng_for(4, "ablate-join");
    let keys: Vec<u64> = (0..N).map(|_| rng.gen_range(1..=2_000_000u64)).collect();
    let probes: Vec<u64> = (0..N).map(|_| rng.gen_range(1..=4_000_000u64)).collect();
    let m_bits = 8 << 20;
    let mut g = c.benchmark_group("ablate_join_filter");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(20);
    g.bench_function("bloom_h3", |b| {
        b.iter(|| {
            let mut f = BloomFilter::new(m_bits, 3, 0);
            for &k in &keys {
                f.insert(k);
            }
            let mut hits = 0u64;
            for &p in &probes {
                hits += u64::from(f.contains(p));
            }
            black_box(hits)
        })
    });
    g.bench_function("register_bloom_h3", |b| {
        b.iter(|| {
            let mut f = RegisterBloomFilter::new(m_bits, 3, 0);
            for &k in &keys {
                f.insert(k);
            }
            let mut hits = 0u64;
            for &p in &probes {
                hits += u64::from(f.contains(p));
            }
            black_box(hits)
        })
    });
    g.finish();
}

/// Ablation: randomized TOP N matrix shape at a fixed cell budget —
/// validates that the Lambert-W `(d*, w*)` shape is the right spend.
fn ablate_matrix_shape(c: &mut Criterion) {
    let mut rng = rng_for(5, "ablate-shape");
    let stream: Vec<u64> = (0..N).map(|_| rng.gen()).collect();
    let (d_star, w_star) = topn_optimal_config(250, 1e-4).unwrap();
    let budget = d_star * w_star;
    let shapes = [
        ("lambert_optimal", d_star, w_star),
        ("wide_rows", budget / (2 * w_star), 2 * w_star),
        ("narrow_rows", budget / 2, 2),
    ];
    let mut g = c.benchmark_group("ablate_topn_matrix_shape");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(20);
    for (name, d, w) in shapes {
        let stream = &stream;
        g.bench_function(name, move |b| {
            b.iter(|| {
                let mut p = RandomizedTopN::new(d.max(1), w.max(1), 0);
                let mut fwd = 0u64;
                for &v in stream {
                    fwd += u64::from(p.process(v).is_forward());
                }
                black_box(fwd)
            })
        });
    }
    g.finish();
}

/// Ablation: fingerprint width vs hashing cost (collision rates are
/// covered by Theorem 4's tests; this measures the dataplane cost).
fn ablate_fingerprint(c: &mut Criterion) {
    let mut rng = rng_for(6, "ablate-fp");
    let keys: Vec<u64> = (0..N).map(|_| rng.gen()).collect();
    let mut g = c.benchmark_group("ablate_fingerprint_width");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(20);
    for bits in [16u32, 32, 64] {
        let f = Fingerprinter::new(7, bits);
        g.bench_function(format!("fp_{bits}b"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &k in &keys {
                    acc ^= f.fp(k);
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

/// Ablation: §9 multi-entry packets — processing cost and pruning loss as
/// the per-packet entry count grows (the packet-count saving is the
/// payoff; the skipped-entry forwarding is the price).
fn ablate_batching(c: &mut Criterion) {
    use cheetah_core::batch::{BatchedPruner, DistinctBatchAccess};
    use cheetah_core::distinct::DistinctPruner;
    let mut rng = rng_for(7, "ablate-batch");
    let stream: Vec<u64> = (0..N).map(|_| rng.gen_range(1..2_000u64)).collect();
    let mut g = c.benchmark_group("ablate_batching");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(20);
    for per_packet in [1usize, 2, 4, 8] {
        let stream = &stream;
        g.bench_function(format!("{per_packet}_entries_per_packet"), move |b| {
            b.iter(|| {
                let inner =
                    DistinctBatchAccess::new(DistinctPruner::new(512, 2, EvictionPolicy::Lru, 3));
                let mut batched = BatchedPruner::new(inner);
                for chunk in stream.chunks(per_packet) {
                    let entries: Vec<Vec<u64>> = chunk.iter().map(|&k| vec![k]).collect();
                    let refs: Vec<&[u64]> = entries.iter().map(|v| v.as_slice()).collect();
                    batched.process_packet(&refs);
                }
                black_box(batched.stats.packets)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablate_distinct_policy,
    ablate_topn,
    ablate_skyline,
    ablate_join,
    ablate_matrix_shape,
    ablate_fingerprint,
    ablate_batching
);
criterion_main!(benches);
