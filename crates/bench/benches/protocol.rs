//! Protocol simulation throughput: events/s through the worker–switch–
//! master state machines at several loss rates, wire-format encode/decode
//! speed, and the distributed executor's end-to-end resilience cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use bytes::Bytes;
use cheetah_bench::bigdata_db;
use cheetah_engine::cheetah::{CheetahExecutor, PrunerConfig};
use cheetah_engine::{Agg, CostModel, DistributedExecutor, Executor, FailurePlan, Query};
use cheetah_net::wire::{DataPacket, Message};
use cheetah_net::{Simulation, SimulationConfig, SwitchNode, WorkerTx};

fn bench_wire(c: &mut Criterion) {
    let msg = Message::Data(DataPacket {
        fid: 3,
        seq: 123_456,
        values: vec![42, 4242, 424242],
    });
    let encoded: Bytes = msg.encode();
    let mut g = c.benchmark_group("wire_format");
    g.throughput(Throughput::Elements(1));
    g.bench_function("encode", |b| b.iter(|| black_box(msg.encode())));
    g.bench_function("decode", |b| {
        b.iter(|| black_box(Message::decode(encoded.clone()).unwrap()))
    });
    g.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let n = 2_000u64;
    let mut g = c.benchmark_group("protocol_simulation");
    g.throughput(Throughput::Elements(n));
    g.sample_size(15);
    for loss in [0.0, 0.05, 0.2] {
        g.bench_function(format!("loss_{:.0}pct", loss * 100.0), |b| {
            b.iter(|| {
                let entries: Vec<Vec<u64>> = (0..n).map(|i| vec![i % 97 + 1]).collect();
                let workers = vec![WorkerTx::new(1, entries, 32, 200)];
                let switch = SwitchNode::transparent();
                let cfg = SimulationConfig {
                    loss_rate: loss,
                    seed: 7,
                    rto_us: 200,
                    window: 32,
                    ..SimulationConfig::default()
                };
                let (_, stats) = Simulation::new(cfg).run(workers, switch);
                assert!(stats.completed);
                black_box(stats.delivered)
            })
        });
    }
    g.finish();
}

fn bench_distributed(c: &mut Criterion) {
    let rows = 20_000usize;
    let db = bigdata_db(rows, rows / 5, 500, 0.5, 42);
    let q = Query::GroupBy {
        table: "uservisits".into(),
        key: "sourcePrefix".into(),
        val: "adRevenue".into(),
        agg: Agg::Sum,
    };
    let mut g = c.benchmark_group("distributed_resilience");
    g.throughput(Throughput::Elements(rows as u64));
    g.sample_size(10);
    for loss in [0.0, 0.05, 0.2] {
        let exec = DistributedExecutor::with_failure_plan(
            CheetahExecutor::new(CostModel::default(), PrunerConfig::default()),
            2,
            FailurePlan {
                loss_rate: loss,
                seed: 7,
                ..FailurePlan::default()
            },
        );
        g.bench_function(format!("groupby_sum_loss_{:.0}pct", loss * 100.0), |b| {
            b.iter(|| {
                let report = exec.execute(&db, &q);
                let res = report.resilience.as_ref().expect("resilience telemetry");
                assert!(!res.degraded);
                black_box(report.result.output_size())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_wire, bench_simulation, bench_distributed);
criterion_main!(benches);
