//! Protocol simulation throughput: events/s through the worker–switch–
//! master state machines at several loss rates, plus wire-format
//! encode/decode speed.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use bytes::Bytes;
use cheetah_net::wire::{DataPacket, Message};
use cheetah_net::{Simulation, SimulationConfig, SwitchNode, WorkerTx};

fn bench_wire(c: &mut Criterion) {
    let msg = Message::Data(DataPacket {
        fid: 3,
        seq: 123_456,
        values: vec![42, 4242, 424242],
    });
    let encoded: Bytes = msg.encode();
    let mut g = c.benchmark_group("wire_format");
    g.throughput(Throughput::Elements(1));
    g.bench_function("encode", |b| b.iter(|| black_box(msg.encode())));
    g.bench_function("decode", |b| {
        b.iter(|| black_box(Message::decode(encoded.clone()).unwrap()))
    });
    g.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let n = 2_000u64;
    let mut g = c.benchmark_group("protocol_simulation");
    g.throughput(Throughput::Elements(n));
    g.sample_size(15);
    for loss in [0.0, 0.05, 0.2] {
        g.bench_function(format!("loss_{:.0}pct", loss * 100.0), |b| {
            b.iter(|| {
                let entries: Vec<Vec<u64>> = (0..n).map(|i| vec![i % 97 + 1]).collect();
                let workers = vec![WorkerTx::new(1, entries, 32, 200)];
                let switch = SwitchNode::transparent();
                let cfg = SimulationConfig {
                    loss_rate: loss,
                    seed: 7,
                    rto_us: 200,
                    window: 32,
                    ..SimulationConfig::default()
                };
                let (_, stats) = Simulation::new(cfg).run(workers, switch);
                assert!(stats.completed);
                black_box(stats.delivered)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_wire, bench_simulation);
criterion_main!(benches);
