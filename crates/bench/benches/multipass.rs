//! Multi-pass dataflow benchmarks: the threaded JOIN build/probe
//! exchange and the DistinctMulti fingerprint merge — the two shapes the
//! persistent-pool/pipelined-handoff redesign targets — plus the
//! isolated core-level join block loops. Engine cases run the full
//! `ThreadedExecutor` (pool workers, switch thread, master completion);
//! their deterministic twins run the same queries through
//! `CheetahExecutor::execute` for a like-for-like wall comparison.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use cheetah_bench::bigdata_db;
use cheetah_core::decision::Decision;
use cheetah_core::join::{BloomFilter, JoinPruner};
use cheetah_engine::cheetah::{CheetahExecutor, PrunerConfig};
use cheetah_engine::{CostModel, Executor, Query, ThreadedExecutor};

const UV_ROWS: usize = 50_000;

fn bench_multipass(c: &mut Criterion) {
    let db = bigdata_db(UV_ROWS, UV_ROWS / 5, 2_000, 0.5, 42);
    let cheetah = CheetahExecutor::new(CostModel::default(), PrunerConfig::default());
    let threaded = ThreadedExecutor::new(cheetah.clone());
    let cases = [
        (
            "join_build_probe",
            Query::Join {
                left: "uservisits".into(),
                right: "rankings".into(),
                left_col: "destURL".into(),
                right_col: "pageURL".into(),
            },
            // Probe-pass entries (the build pass makes no decisions).
            (UV_ROWS + UV_ROWS / 5) as u64,
        ),
        (
            "distinct_multi_merge",
            Query::DistinctMulti {
                table: "uservisits".into(),
                columns: vec!["userAgent".into(), "languageCode".into()],
            },
            UV_ROWS as u64,
        ),
    ];
    for (name, query, entries) in cases {
        let mut g = c.benchmark_group(format!("multipass_{name}"));
        g.throughput(Throughput::Elements(entries));
        g.sample_size(10);
        g.bench_function("threaded_pool", |b| {
            b.iter(|| black_box(threaded.execute(&db, &query)))
        });
        g.bench_function("deterministic", |b| {
            b.iter(|| black_box(cheetah.execute(&db, &query)))
        });
        g.finish();
    }

    // The isolated switch-side join loops: build both Bloom filters from
    // a two-sided key stream, then probe it — no threads, no channels.
    let sides: Vec<u64> = (0..2 * UV_ROWS).map(|i| u64::from(i >= UV_ROWS)).collect();
    let keys: Vec<u64> = (0..2 * UV_ROWS)
        .map(|i| (i as u64 * 2_654_435_761) % 60_000)
        .collect();
    let mut g = c.benchmark_group("multipass_join_block_loops");
    g.throughput(Throughput::Elements(2 * UV_ROWS as u64));
    g.sample_size(10);
    g.bench_function("observe_then_probe", |b| {
        b.iter(|| {
            let mut jp = JoinPruner::new(
                BloomFilter::new(1 << 22, 3, 0),
                BloomFilter::new(1 << 22, 3, 1),
            );
            jp.observe_block(&sides, &keys);
            let mut out = vec![Decision::Prune; keys.len()];
            jp.probe_block(&sides, &keys, &mut out);
            black_box(out.iter().filter(|d| d.is_forward()).count())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_multipass);
criterion_main!(benches);
