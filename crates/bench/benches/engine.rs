//! End-to-end executor benches: wall-clock cost of running a query
//! through the reference evaluator and every [`Executor`] implementation
//! (real partials / real pruning) at library scale — one generic loop
//! over the trait, no per-executor bench bodies.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use cheetah_bench::bigdata_db;
use cheetah_engine::cheetah::{CheetahExecutor, PrunerConfig};
use cheetah_engine::netaccel::NetAccelModel;
use cheetah_engine::reference;
use cheetah_engine::spark::SparkExecutor;
use cheetah_engine::{Agg, CostModel, Executor, NetAccelExecutor, Query, ThreadedExecutor};

fn bench_executors(c: &mut Criterion) {
    let rows = 100_000usize;
    let db = bigdata_db(rows, 20_000, 1_000, 0.5, 1);
    let queries: Vec<(&str, Query)> = vec![
        (
            "distinct",
            Query::Distinct {
                table: "uservisits".into(),
                column: "userAgent".into(),
            },
        ),
        (
            "groupby_max",
            Query::GroupBy {
                table: "uservisits".into(),
                key: "userAgent".into(),
                val: "adRevenue".into(),
                agg: Agg::Max,
            },
        ),
        (
            "topn",
            Query::TopN {
                table: "uservisits".into(),
                order_by: "adRevenue".into(),
                n: 250,
            },
        ),
    ];
    let model = CostModel::default();
    let spark = SparkExecutor::new(model);
    let cheetah = CheetahExecutor::new(model, PrunerConfig::default());
    let threaded = ThreadedExecutor::new(cheetah.clone());
    let netaccel = NetAccelExecutor::new(cheetah.clone(), NetAccelModel::default());
    let executors: Vec<&dyn Executor> = vec![&spark, &cheetah, &threaded, &netaccel];

    for (name, q) in &queries {
        let mut g = c.benchmark_group(format!("engine_{name}"));
        g.throughput(Throughput::Elements(rows as u64));
        g.sample_size(10);
        g.bench_function("reference", |b| {
            b.iter(|| black_box(reference::evaluate(&db, q)))
        });
        for exec in &executors {
            g.bench_function(format!("{}_executor", exec.name()), |b| {
                b.iter(|| black_box(exec.execute(&db, q)))
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_executors);
criterion_main!(benches);
