//! The cost of honesty: packet throughput of the constrained PISA
//! programs vs their unconstrained `cheetah-core` references. The delta
//! is the simulator's constraint-checking overhead — the real switch does
//! this in silicon at line rate.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use cheetah_core::distinct::{DistinctPruner, EvictionPolicy};
use cheetah_core::groupby::{Extremum, GroupByPruner};
use cheetah_core::topn::RandomizedTopN;
use cheetah_core::SwitchModel;
use cheetah_pisa::programs::{DistinctLruProgram, GroupByProgram, RandTopNProgram};
use cheetah_pisa::SwitchProgram;
use cheetah_workloads::dist::rng_for;
use rand::Rng;

const N: usize = 50_000;

fn bench_pipeline(c: &mut Criterion) {
    let mut rng = rng_for(1, "pipeline");
    let keys: Vec<u64> = (0..N).map(|_| rng.gen_range(1..5_000u64)).collect();
    let vals: Vec<u64> = (0..N).map(|_| rng.gen_range(1..1_000_000u64)).collect();
    let spec = SwitchModel::tofino_like();

    let mut g = c.benchmark_group("pisa_vs_core");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(20);

    g.bench_function("core_distinct", |b| {
        let mut p = DistinctPruner::new(1024, 2, EvictionPolicy::Lru, 0);
        b.iter(|| {
            for &k in &keys {
                black_box(p.process(k));
            }
        })
    });
    g.bench_function("pisa_distinct", |b| {
        let mut p = DistinctLruProgram::new(spec, 1024, 2, 0).unwrap();
        b.iter(|| {
            for &k in &keys {
                black_box(p.process(&[k]).unwrap());
            }
        })
    });

    g.bench_function("core_topn", |b| {
        let mut p = RandomizedTopN::new(1024, 4, 0);
        b.iter(|| {
            for &v in &vals {
                black_box(p.process(v));
            }
        })
    });
    g.bench_function("pisa_topn", |b| {
        let mut p = RandTopNProgram::new(spec, 1024, 4, 0).unwrap();
        b.iter(|| {
            for &v in &vals {
                black_box(p.process(&[v]).unwrap());
            }
        })
    });

    g.bench_function("core_groupby", |b| {
        let mut p = GroupByPruner::new(256, 4, Extremum::Max, 0);
        b.iter(|| {
            for (k, v) in keys.iter().zip(&vals) {
                black_box(p.process(*k, *v));
            }
        })
    });
    g.bench_function("pisa_groupby", |b| {
        let mut p = GroupByProgram::new(spec, 256, 4, Extremum::Max, 0).unwrap();
        b.iter(|| {
            for (k, v) in keys.iter().zip(&vals) {
                black_box(p.process(&[*k, *v]).unwrap());
            }
        })
    });

    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
